(* Command-line driver: run OpenNF scenarios from the shell.

     opennf_demo move --flows 500 --rate 2500 --guarantee lf+op --parallel
     opennf_demo baseline --rate 2500
     opennf_demo scale-out

   Each command builds a simulated testbed (switch + controller + NF
   instances), replays synthetic traffic, performs the operation and
   prints the outcome plus the audit verdict on loss and ordering. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf
open Cmdliner

(* Demo scenarios are fault-free; a typed operation error here is a
   wiring bug, so unwrap loudly. *)
let ok = function Ok v -> v | Error e -> raise (Op_error.Op_failed e)

let verdict ?(keys = []) fab nfs =
  let lost = Audit.lost fab.Fabric.audit ~nfs in
  let dups = Audit.duplicated fab.Fabric.audit in
  let reorder = Audit.order_violations fab.Fabric.audit in
  (* Per-flow ordering is what a per-flow-scope move guarantees
     (§5.1.2): cross-flow order matters only when multi-flow state
     moves too. *)
  let per_flow_reorder =
    List.fold_left
      (fun acc key ->
        acc
        + List.length
            (Audit.order_violations ~filter:(Filter.of_key key)
               fab.Fabric.audit))
      0 keys
  in
  let arrival_reorder = Audit.arrival_order_violations fab.Fabric.audit in
  Format.printf
    "audit: lost=%d duplicated=%d reordered-pairs=%d (vs arrival: %d, \
     within flows: %d)@."
    (List.length lost) (List.length dups) (List.length reorder)
    (List.length arrival_reorder) per_flow_reorder

(* --- move command -------------------------------------------------------- *)

let guarantee_conv =
  let parse = function
    | "none" | "ng" -> Ok Move.No_guarantee
    | "lf" | "loss-free" -> Ok Move.Loss_free
    | "lf+op" | "op" | "order-preserving" -> Ok Move.Order_preserving
    | s -> Error (`Msg (Printf.sprintf "unknown guarantee %S" s))
  in
  let print ppf g = Move.pp_guarantee ppf g in
  Arg.conv (parse, print)

let run_move flows rate guarantee parallel early_release compress =
  let fab = Fabric.create ~seed:1 () in
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let nf1, rt1 =
    Fabric.add_nf fab ~name:"prads1" ~impl:(Opennf_nfs.Prads.impl prads1)
      ~costs:Costs.prads
  in
  let nf2, rt2 =
    Fabric.add_nf fab ~name:"prads2" ~impl:(Opennf_nfs.Prads.impl prads2)
      ~costs:Costs.prads
  in
  let gen = Opennf_trace.Gen.create () in
  let handshakes = 2.0 *. float_of_int flows /. rate in
  let schedule, keys =
    Opennf_trace.Gen.steady_flows gen ~flows ~rate ~start:0.05
      ~duration:(handshakes +. 2.5) ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  Engine.schedule_at fab.engine (handshakes +. 0.55) (fun () ->
      Proc.spawn fab.engine (fun () ->
          let report =
            ok
              (Move.run fab.ctrl
                 (Move.spec ~src:nf1 ~dst:nf2 ~filter:Filter.any ~guarantee
                    ~parallel ~early_release ~compress ()))
          in
          Format.printf "%a@." Move.pp_report report));
  Fabric.run fab;
  Format.printf "processed: prads1=%d prads2=%d; dropped at source: %d@."
    (Opennf_sb.Runtime.processed_count rt1)
    (Opennf_sb.Runtime.processed_count rt2)
    (Opennf_sb.Runtime.tombstone_dropped rt1);
  verdict ~keys fab [ "prads1"; "prads2" ]

let flows_arg =
  Arg.(value & opt int 500 & info [ "flows" ] ~doc:"Number of flows.")

let rate_arg =
  Arg.(
    value & opt float 2500.0 & info [ "rate" ] ~doc:"Aggregate packets/second.")

let move_cmd =
  let guarantee =
    Arg.(
      value
      & opt guarantee_conv Move.Loss_free
      & info [ "guarantee" ] ~doc:"none | lf | lf+op")
  in
  let parallel = Arg.(value & flag & info [ "parallel" ] ~doc:"Stream chunks.") in
  let early = Arg.(value & flag & info [ "early-release" ] ~doc:"Early release.") in
  let compress = Arg.(value & flag & info [ "compress" ] ~doc:"Compress state.") in
  Cmd.v
    (Cmd.info "move" ~doc:"Move flows between two PRADS instances")
    Term.(
      const run_move $ flows_arg $ rate_arg $ guarantee $ parallel $ early
      $ compress)

(* --- trace command --------------------------------------------------------- *)

(* Run a seeded loss-free move with the span tracer on, export the
   Chrome trace and print the metrics snapshot. The exported JSON is
   virtual-time only, so two runs with the same arguments are
   byte-identical — the @trace-check alias diffs exactly that, for the
   serial control plane and for a 2-shard one (where the move crosses
   shards and the spans carry shard attributes). *)
let run_trace flows rate seed out timeline shards =
  let obs = Opennf_obs.Hub.create ~trace:true () in
  let fab = Fabric.create ~seed ~obs ~shards () in
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let nf1, _ =
    Fabric.add_nf fab ~shard:0 ~name:"prads1"
      ~impl:(Opennf_nfs.Prads.impl prads1) ~costs:Costs.prads
  in
  let nf2, _ =
    Fabric.add_nf fab ~shard:(shards - 1) ~name:"prads2"
      ~impl:(Opennf_nfs.Prads.impl prads2) ~costs:Costs.prads
  in
  let gen = Opennf_trace.Gen.create () in
  let handshakes = 2.0 *. float_of_int flows /. rate in
  let schedule, _ =
    Opennf_trace.Gen.steady_flows gen ~flows ~rate ~start:0.05
      ~duration:(handshakes +. 2.5) ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  Engine.schedule_at fab.engine (handshakes +. 0.55) (fun () ->
      Proc.spawn fab.engine (fun () ->
          let spec =
            Move.spec ~src:nf1 ~dst:nf2 ~filter:Filter.any
              ~guarantee:Move.Loss_free ~parallel:true ()
          in
          (* The serial path stays exactly the pre-shard one (direct run,
             no scheduler spans); sharded traces go through the
             cross-shard handshake. *)
          let report =
            if shards <= 1 then ok (Move.run fab.ctrl spec)
            else
              ok (Proc.Ivar.read (Move.submit_sharded fab.Fabric.group spec))
          in
          Format.printf "%a@." Move.pp_report report));
  Fabric.run fab;
  let tr = Opennf_obs.Hub.trace obs in
  if timeline then print_string (Opennf_obs.Export.timeline tr);
  Out_channel.with_open_text out (fun oc ->
      output_string oc (Opennf_obs.Export.chrome tr));
  Format.printf "wrote %d trace events to %s (load via chrome://tracing)@."
    (Opennf_obs.Trace.length tr) out;
  print_string (Opennf_obs.Export.metrics_json (Opennf_obs.Hub.metrics obs))

let trace_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Engine seed.") in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "out" ] ~doc:"Chrome trace output path.")
  in
  let timeline =
    Arg.(
      value & flag
      & info [ "timeline" ] ~doc:"Also print the human-readable timeline.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ]
          ~doc:"Controller shards (the move crosses shards when > 1).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a traced move and export a Chrome trace + metrics")
    Term.(
      const run_trace $ flows_arg $ rate_arg $ seed $ out $ timeline $ shards)

(* --- report command -------------------------------------------------------- *)

(* Critical-path latency attribution plus the runtime guarantee verdict
   for a seeded two-move scenario: an order-preserving move out and a
   loss-free move back, both admitted through the scheduler (their
   footprints conflict, so the second op shows real queue wait). All
   output is virtual-time data — two runs with the same arguments are
   byte-identical, which @bench-check's moncheck gate relies on. *)
let run_report flows rate seed shards openmetrics folded =
  let obs = Opennf_obs.Hub.create ~trace:true () in
  let fab = Fabric.create ~seed ~obs ~shards ~monitor:true () in
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let nf1, _ =
    Fabric.add_nf fab ~shard:0 ~name:"prads1"
      ~impl:(Opennf_nfs.Prads.impl prads1) ~costs:Costs.prads
  in
  let nf2, _ =
    Fabric.add_nf fab ~shard:(shards - 1) ~name:"prads2"
      ~impl:(Opennf_nfs.Prads.impl prads2) ~costs:Costs.prads
  in
  let gen = Opennf_trace.Gen.create () in
  let handshakes = 2.0 *. float_of_int flows /. rate in
  let schedule, _ =
    Opennf_trace.Gen.steady_flows gen ~flows ~rate ~start:0.05
      ~duration:(handshakes +. 2.5) ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  Engine.schedule_at fab.engine (handshakes +. 0.55) (fun () ->
      Proc.spawn fab.engine (fun () ->
          let submit spec =
            if shards <= 1 then Move.submit fab.sched spec
            else Move.submit_sharded fab.Fabric.group spec
          in
          let out =
            submit
              (Move.spec ~src:nf1 ~dst:nf2 ~filter:Filter.any
                 ~guarantee:Move.Order_preserving ())
          in
          let back =
            submit
              (Move.spec ~src:nf2 ~dst:nf1 ~filter:Filter.any
                 ~guarantee:Move.Loss_free ~parallel:true ())
          in
          ignore (ok (Proc.Ivar.read out));
          ignore (ok (Proc.Ivar.read back))));
  Fabric.run fab;
  let tr = Opennf_obs.Hub.trace obs in
  let metrics = Opennf_obs.Hub.metrics obs in
  let ops = Opennf_obs.Critical_path.analyze tr in
  print_string (Opennf_obs.Critical_path.report ops);
  (* The reconciliation contract (see {!Opennf_obs.Critical_path}):
     span-derived totals equal the histogram's running sum bit for
     bit — any drift means attribution lost or double-counted time. *)
  let cp_total = Opennf_obs.Critical_path.total ops in
  let hist_sum =
    match
      List.assoc_opt "op.duration_s" (Opennf_obs.Metrics.hists metrics)
    with
    | Some h -> Opennf_util.Stats.Histogram.sum h
    | None -> 0.0
  in
  Format.printf
    "reconcile: critical-path total %.17g s, op.duration_s sum %.17g s (%s)@."
    cp_total hist_sum
    (if Float.equal cp_total hist_sum then "exact" else "MISMATCH");
  print_string (Opennf_obs.Monitor.render (Fabric.verdict fab));
  if folded then print_string (Opennf_obs.Critical_path.folded ops);
  if openmetrics then begin
    Opennf_obs.Critical_path.observe metrics ops;
    print_string (Opennf_obs.Export.openmetrics metrics)
  end

let report_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Engine seed.") in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ]
          ~doc:"Controller shards (the moves cross shards when > 1).")
  in
  let openmetrics =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:"Also print the metrics registry in OpenMetrics text format.")
  in
  let folded =
    Arg.(
      value & flag
      & info [ "folded" ]
          ~doc:"Also print flamegraph-style folded phase stacks.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Critical-path phase attribution + runtime guarantee verdict for a \
          scheduled two-move scenario")
    Term.(
      const run_report $ flows_arg $ rate_arg $ seed $ shards $ openmetrics
      $ folded)

(* --- baseline command ----------------------------------------------------- *)

let run_baseline flows rate =
  (* A modest packet-out engine, like the paper's switch: it makes the
     Figure 5 race (flush vs forwarding update) visible. *)
  let fab = Fabric.create ~seed:2 ~packet_out_rate:1500.0 () in
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let nf1, rt1 =
    Fabric.add_nf fab ~name:"prads1" ~impl:(Opennf_nfs.Prads.impl prads1)
      ~costs:Costs.prads
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"prads2" ~impl:(Opennf_nfs.Prads.impl prads2)
      ~costs:Costs.prads
  in
  let gen = Opennf_trace.Gen.create () in
  let handshakes = 2.0 *. float_of_int flows /. rate in
  let schedule, _ =
    Opennf_trace.Gen.steady_flows gen ~flows ~rate ~start:0.05
      ~duration:(handshakes +. 2.5) ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  Engine.schedule_at fab.engine (handshakes +. 0.55) (fun () ->
      Proc.spawn fab.engine (fun () ->
          let r =
            Opennf_baseline.Splitmerge.migrate fab.ctrl ~src:nf1 ~dst:nf2
              ~filter:Filter.any
          in
          Format.printf
            "split/merge migrate: %.1fms, %d chunks, %d buffered, %d late@."
            (1000.0 *. (r.Opennf_baseline.Splitmerge.finished -. r.started))
            r.chunks r.buffered r.late));
  Fabric.run fab;
  Format.printf "dropped at source: %d@."
    (Opennf_sb.Runtime.tombstone_dropped rt1);
  verdict fab [ "prads1"; "prads2" ]

let _ = run_baseline

let baseline_cmd =
  Cmd.v
    (Cmd.info "baseline" ~doc:"Split/Merge-style migrate (shows the races)")
    Term.(const run_baseline $ flows_arg $ rate_arg)

(* --- scale-out command ------------------------------------------------------ *)

let run_scale_out () =
  (* The Figure 1 story in one command: an overloaded IDS is scaled out
     mid-scan without losing the scan. *)
  let fab = Fabric.create ~seed:3 () in
  let ids1 = Opennf_nfs.Ids.create ~scan_threshold:12 () in
  let ids2 = Opennf_nfs.Ids.create ~scan_threshold:12 () in
  let nf1, _ =
    Fabric.add_nf fab ~name:"bro1" ~impl:(Opennf_nfs.Ids.impl ids1)
      ~costs:Costs.bro
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"bro2" ~impl:(Opennf_nfs.Ids.impl ids2)
      ~costs:Costs.bro
  in
  let gen = Opennf_trace.Gen.create () in
  let scan =
    Opennf_trace.Gen.port_scan gen
      ~src:(Ipaddr.v 203 0 113 9)
      ~dst:(Ipaddr.v 10 1 0 7)
      ~ports:(List.init 16 (fun i -> 1000 + i))
      ~start:0.1 ~gap:0.1 ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) scan;
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any nf1;
      Proc.sleep 0.9;
      ignore
        (ok
           (Copy_op.run fab.ctrl ~src:nf1 ~dst:nf2 ~filter:Filter.any
              ~scope:[ Opennf_state.Scope.Multi ] ()));
      ignore
        (ok
           (Move.run fab.ctrl
              (Move.spec ~src:nf1 ~dst:nf2 ~filter:Filter.any
                 ~guarantee:Move.Loss_free ~parallel:true ()))));
  Fabric.run fab;
  let scans ids =
    List.filter
      (function Opennf_nfs.Ids.Port_scan _ -> true | _ -> false)
      (Opennf_nfs.Ids.alert_log ids)
  in
  Format.printf "scan alerts: bro1=%d bro2=%d (detected across the split: %b)@."
    (List.length (scans ids1))
    (List.length (scans ids2))
    (scans ids1 <> [] || scans ids2 <> [])

let scale_out_cmd =
  Cmd.v
    (Cmd.info "scale-out" ~doc:"Figure 1: scale an IDS out mid-scan")
    Term.(const run_scale_out $ const ())

let () =
  let info =
    Cmd.info "opennf_demo" ~version:"1.0.0"
      ~doc:"OpenNF control-plane scenarios on a simulated testbed"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ move_cmd; baseline_cmd; scale_out_cmd; trace_cmd; report_cmd ]))
