(* Shared test scaffolding: a two-instance PRADS testbed with steady
   traffic, and checkers over the audit ledger for the paper's §5.1
   safety definitions. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf

type testbed = {
  fab : Fabric.t;
  nf1 : Controller.nf;
  nf2 : Controller.nf;
  prads1 : Opennf_nfs.Prads.t;
  prads2 : Opennf_nfs.Prads.t;
  rt1 : Opennf_sb.Runtime.t;
  rt2 : Opennf_sb.Runtime.t;
  keys : Flow.key list;
  last_packet_at : float;
}

(* Two PRADS instances; [flows] flows at [rate] pps routed to nf1.
   With [shards], nf1 homes on shard 0 and nf2 on the last shard, so a
   move between them exercises the cross-shard path. *)
let prads_pair ?(seed = 7) ?(flows = 50) ?(rate = 1000.0) ?(duration = 2.0)
    ?packet_out_rate ?resilience ?shards ?obs ?monitor () =
  let fab =
    Fabric.create ~seed ?packet_out_rate ?resilience ?shards ?obs ?monitor ()
  in
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let nf1, rt1 =
    Fabric.add_nf fab ~shard:0 ~name:"prads1"
      ~impl:(Opennf_nfs.Prads.impl prads1) ~costs:Costs.prads
  in
  let nf2, rt2 =
    Fabric.add_nf fab
      ~shard:(Fabric.shards fab - 1)
      ~name:"prads2"
      ~impl:(Opennf_nfs.Prads.impl prads2) ~costs:Costs.prads
  in
  let gen = Opennf_trace.Gen.create ~seed:(seed + 1) () in
  let schedule, keys =
    Opennf_trace.Gen.steady_flows gen ~flows ~rate ~start:0.05 ~duration ()
  in
  let last_packet_at = List.fold_left (fun acc (t, _) -> Float.max acc t) 0.0 schedule in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  (* Default route: everything to nf1. *)
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  { fab; nf1; nf2; prads1; prads2; rt1; rt2; keys; last_packet_at }

(* Run a blocking operation [at] a given time, then the whole sim. *)
let run_at fab ~at body =
  Engine.schedule_at fab.Fabric.engine at (fun () ->
      Proc.spawn fab.Fabric.engine body);
  Fabric.run fab

let run_with tb ~at body = run_at tb.fab ~at body

let nf_names = [ "prads1"; "prads2" ]

let assert_loss_free ?filter tb =
  let lost = Audit.lost ?filter tb.fab.audit ~nfs:nf_names in
  Alcotest.(check (list int)) "no packet forwarded to the NFs was lost" [] lost;
  let dup = Audit.duplicated ?filter tb.fab.audit in
  Alcotest.(check (list int)) "no packet was processed twice" [] dup

let assert_order_preserved ?filter tb =
  let violations = Audit.order_violations ?filter tb.fab.audit in
  Alcotest.(check int)
    "processing order equals switch forwarding order" 0
    (List.length violations)

(* Per-flow order preservation (what LF+OP+ER guarantees for per-flow
   scope): check each moved flow independently. *)
let assert_order_preserved_per_flow tb =
  List.iter
    (fun key -> assert_order_preserved ~filter:(Filter.of_key key) tb)
    tb.keys

let total_processed tb =
  Opennf_sb.Runtime.processed_count tb.rt1
  + Opennf_sb.Runtime.processed_count tb.rt2
