(* Tests for the prior-control-plane baselines: Split/Merge migrate, VM
   replication, and sticky per-flow routing. These exist to demonstrate
   the failure modes OpenNF's operations eliminate, so the assertions
   check that the failures actually occur. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
module Nf_api = Opennf_sb.Nf_api
open Opennf_net
open Opennf
module H = Helpers

let ip = Ipaddr.v

let test_splitmerge_moves_state () =
  let tb = H.prads_pair ~flows:30 () in
  let report = ref None in
  H.run_with tb ~at:1.0 (fun () ->
      report :=
        Some
          (Opennf_baseline.Splitmerge.migrate tb.H.fab.ctrl ~src:tb.H.nf1
             ~dst:tb.H.nf2 ~filter:Filter.any));
  let r = Option.get !report in
  Alcotest.(check int) "all chunks transferred" 30 r.Opennf_baseline.Splitmerge.chunks;
  Alcotest.(check int) "state ends at the destination" 30
    (Opennf_nfs.Prads.connection_count tb.H.prads2);
  Alcotest.(check bool) "traffic was halted and buffered" true
    (r.Opennf_baseline.Splitmerge.buffered > 0)

let test_splitmerge_reorders_against_arrival () =
  (* The Figure 5 race: a constrained packet-out engine lets directly
     forwarded packets overtake the controller's flush. *)
  let tb = H.prads_pair ~flows:50 ~rate:3000.0 ~packet_out_rate:800.0 () in
  H.run_with tb ~at:1.0 (fun () ->
      ignore
        (Opennf_baseline.Splitmerge.migrate tb.H.fab.ctrl ~src:tb.H.nf1
           ~dst:tb.H.nf2 ~filter:Filter.any));
  Alcotest.(check bool) "reordering occurred" true
    (List.length (Audit.arrival_order_violations tb.H.fab.audit) > 0)

let test_opennf_op_move_does_not_reorder_same_setup () =
  (* Same adversarial setup, but OpenNF's order-preserving move. *)
  let tb = H.prads_pair ~flows:50 ~rate:3000.0 ~packet_out_rate:800.0 () in
  H.run_with tb ~at:1.0 (fun () ->
      ignore
        (Move.run_exn tb.H.fab.ctrl
           (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
              ~guarantee:Move.Order_preserving ())));
  Alcotest.(check int) "no reordering" 0
    (List.length (Audit.arrival_order_violations tb.H.fab.audit));
  H.assert_loss_free tb

let test_vm_replication_copies_everything () =
  let ids1 = Opennf_nfs.Ids.create () in
  let ids2 = Opennf_nfs.Ids.create () in
  let impl1 = Opennf_nfs.Ids.impl ids1 and impl2 = Opennf_nfs.Ids.impl ids2 in
  (* 4 HTTP flows and 4 others at the source. *)
  let mk dport i =
    let key = Flow.make ~src:(ip 10 0 0 (1 + i)) ~dst:(ip 8 8 8 8) ~sport:(100 + i) ~dport () in
    impl1.Nf_api.process_packet
      (Packet.create ~id:i ~key ~flags:[ Syn ] ~sent_at:0.0 ())
  in
  for i = 0 to 3 do mk 80 i done;
  for i = 4 to 7 do mk 7001 i done;
  let report =
    Opennf_baseline.Vm_replication.clone ~src:impl1 ~dst:impl2
      ~needed:(Filter.make ~proto:Flow.Tcp ~dst_port:80 ())
  in
  Alcotest.(check int) "clone holds all connections" 8
    (Opennf_nfs.Ids.conn_count ids2);
  Alcotest.(check bool) "unneeded state was copied too" true
    (report.Opennf_baseline.Vm_replication.needed_bytes
     < report.Opennf_baseline.Vm_replication.total_bytes);
  Alcotest.(check bool) "source unchanged" true
    (Opennf_nfs.Ids.conn_count ids1 = 8)

let test_flow_router_sticky () =
  let fab = Fabric.create ~seed:13 () in
  let p1 = Opennf_nfs.Prads.create () in
  let p2 = Opennf_nfs.Prads.create () in
  let nf1, rt1 =
    Fabric.add_nf fab ~name:"a" ~impl:(Opennf_nfs.Prads.impl p1) ~costs:Costs.dummy
  in
  let nf2, rt2 =
    Fabric.add_nf fab ~name:"b" ~impl:(Opennf_nfs.Prads.impl p2) ~costs:Costs.dummy
  in
  (* Flow 1 starts before the policy change and keeps sending after it;
     flow 2 starts after the change. *)
  let gen = Opennf_trace.Gen.create () in
  let k1 = Flow.make ~src:(ip 10 0 0 1) ~dst:(ip 8 8 8 8) ~sport:1 ~dport:80 () in
  let k2 = Flow.make ~src:(ip 10 0 0 2) ~dst:(ip 8 8 8 8) ~sport:2 ~dport:80 () in
  let sched =
    [ Opennf_trace.Gen.packet gen ~at:0.2 ~key:k1 ~flags:[ Syn ] ();
      Opennf_trace.Gen.packet gen ~at:1.5 ~key:k1 ~seq:1 ();
      Opennf_trace.Gen.packet gen ~at:1.6 ~key:k2 ~flags:[ Syn ] ();
      Opennf_trace.Gen.packet gen ~at:1.7 ~key:k2 ~seq:1 () ]
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) sched;
  let router = ref None in
  Proc.spawn fab.engine (fun () ->
      let r = Opennf_baseline.Flow_router.start fab.ctrl ~policy:(fun _ -> nf1) () in
      router := Some r;
      Proc.sleep 1.0;
      Opennf_baseline.Flow_router.set_policy r (fun _ -> nf2));
  Fabric.run fab;
  let r = Option.get !router in
  Alcotest.(check int) "old flow stays pinned to a" 1
    (Opennf_baseline.Flow_router.pinned_on r nf1);
  Alcotest.(check int) "new flow pinned to b" 1
    (Opennf_baseline.Flow_router.pinned_on r nf2);
  Alcotest.(check int) "old flow processed at a" 2
    (Opennf_sb.Runtime.processed_count rt1);
  Alcotest.(check int) "new flow processed at b" 2
    (Opennf_sb.Runtime.processed_count rt2)

let suite =
  [
    Alcotest.test_case "split/merge: transfers state" `Quick
      test_splitmerge_moves_state;
    Alcotest.test_case "split/merge: Figure 5 reordering" `Quick
      test_splitmerge_reorders_against_arrival;
    Alcotest.test_case "opennf OP move: no reordering, same setup" `Quick
      test_opennf_op_move_does_not_reorder_same_setup;
    Alcotest.test_case "vm replication: unneeded state" `Quick
      test_vm_replication_copies_everything;
    Alcotest.test_case "flow router: sticky pinning" `Quick test_flow_router_sticky;
  ]
