(* The sharded control plane (ISSUE 8): partition totality/stability,
   sharded-vs-serial equivalence on disjoint workloads, cross-shard
   moves (semantics, faults, serialization), crash containment to one
   shard, and the single-shard smoke guarantees (no behavior or metric
   namespace drift at [shards = 1]). *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Faults = Opennf_sim.Faults
module Hashing = Opennf_util.Hashing
module Costs = Opennf_sb.Costs
module Dummy = Opennf_nfs.Dummy
module H = Helpers
open Opennf_net
open Opennf

let subnet i = Ipaddr.Prefix.make (Ipaddr.v 10 (80 + i) 0 0) 16
let servers = Ipaddr.Prefix.make (Ipaddr.v 172 31 0 0) 16
let two_sided i = Filter.make ~src:(subnet i) ~dst:servers ()

let key_in_subnet i k =
  Flow.make
    ~src:(Ipaddr.of_int (Ipaddr.to_int (Ipaddr.v 10 (80 + i) 0 0) + k + 1))
    ~dst:(Ipaddr.v 172 31 0 1) ~proto:Flow.Tcp ~sport:(30000 + k) ~dport:443 ()

(* --- partition function --------------------------------------------------- *)

let test_partition_basics () =
  let k = key_in_subnet 0 3 in
  Alcotest.(check int) "one shard maps to 0" 0 (Shard.of_key ~shards:1 k);
  let s = Shard.of_key ~shards:4 k in
  Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
  Alcotest.(check int) "mirrored key, same shard" s
    (Shard.of_key ~shards:4 (Flow.reverse k));
  Alcotest.(check int) "stable across calls" s (Shard.of_key ~shards:4 k);
  (match Shard.of_filter ~shards:4 (Filter.of_key k) with
  | Some s' -> Alcotest.(check int) "exact filter agrees with key" s s'
  | None -> Alcotest.fail "exact filter must resolve to a shard");
  Alcotest.(check (option int)) "wildcard filter spans shards" None
    (Shard.of_filter ~shards:4 (two_sided 0));
  let n = Shard.of_name ~shards:4 "prads1" in
  Alcotest.(check bool) "name shard in range" true (n >= 0 && n < 4);
  Alcotest.(check int) "name shard stable" n (Shard.of_name ~shards:4 "prads1")

let arbitrary_key =
  QCheck.(
    map
      (fun (a, b, (sport, dport, udp)) ->
        Flow.make
          ~src:(Ipaddr.of_int (0x0a000000 + (a land 0xffff)))
          ~dst:(Ipaddr.of_int (0xac1f0000 + (b land 0xffff)))
          ~proto:(if udp then Flow.Udp else Flow.Tcp)
          ~sport:(1 + (sport land 0xffff))
          ~dport:(1 + (dport land 0xffff))
          ())
      (triple (int_bound 0xffff) (int_bound 0xffff)
         (triple (int_bound 0xfffe) (int_bound 0xfffe) bool)))

(* Totality (every key maps into [0, shards)), direction independence
   (a connection never straddles shards) and determinism. *)
let prop_partition_total_stable =
  QCheck.Test.make ~name:"partition total, stable, direction-independent"
    ~count:500
    QCheck.(pair arbitrary_key (int_range 1 8))
    (fun (key, shards) ->
      let s = Shard.of_key ~shards key in
      s >= 0 && s < shards
      && Shard.of_key ~shards (Flow.reverse key) = s
      && Shard.of_key ~shards key = s
      && Shard.of_key ~shards:1 key = 0)

(* --- sharded == serial on disjoint workloads ------------------------------ *)

type pair = { src : Controller.nf; dst : Controller.nf; d1 : Dummy.t; d2 : Dummy.t }

(* [n] src/dst dummy pairs, pair [i] homed entirely on shard
   [i mod shards]; every move is intra-shard and the workload is
   disjoint across pairs. *)
let sharded_bed ?(seed = 5) ?resilience ~shards ~n ~flows () =
  let fab = Fabric.create ~seed ?resilience ~shards () in
  let pairs =
    List.init n (fun i ->
        let d1 = Dummy.create () in
        let d2 = Dummy.create () in
        Dummy.seed_flows d1 (List.init flows (key_in_subnet i));
        let home = i mod shards in
        let src, _ =
          Fabric.add_nf fab ~shard:home ~name:(Printf.sprintf "src%d" i)
            ~impl:(Dummy.impl d1) ~costs:Costs.dummy
        in
        let dst, _ =
          Fabric.add_nf fab ~shard:home ~name:(Printf.sprintf "dst%d" i)
            ~impl:(Dummy.impl d2) ~costs:Costs.dummy
        in
        { src; dst; d1; d2 })
  in
  Proc.spawn fab.engine (fun () ->
      List.iteri
        (fun i p -> Controller.set_route fab.ctrl (two_sided i) p.src)
        pairs);
  (fab, pairs)

let spec_for ?on_phase ~filter p =
  Move.spec ~src:p.src ~dst:p.dst ~filter ~guarantee:Move.Loss_free
    ~parallel:true ?on_phase ()

let run_sharded fab specs =
  let results = ref [] in
  let finished = ref 0.0 in
  Engine.schedule_at fab.Fabric.engine 0.1 (fun () ->
      Proc.spawn fab.Fabric.engine (fun () ->
          let ivars = List.map (Move.submit_sharded fab.Fabric.group) specs in
          results := List.map Proc.Ivar.read ivars;
          finished := Engine.now fab.Fabric.engine));
  Fabric.run fab;
  (!results, !finished -. 0.1)

let outcome ?seed ~shards ~n ~flows () =
  let fab, pairs = sharded_bed ?seed ~shards ~n ~flows () in
  let specs = List.mapi (fun i p -> spec_for ~filter:(two_sided i) p) pairs in
  let results, makespan = run_sharded fab specs in
  let semantic =
    List.map2
      (fun r p ->
        let r = Op_error.ok_exn r in
        ( r.Move.rp_src, r.Move.rp_dst, r.Move.per_chunks, r.Move.multi_chunks,
          r.Move.state_bytes, Dummy.flow_count p.d1, Dummy.imported_count p.d2
        ))
      results pairs
  in
  (semantic, makespan, fab)

let test_disjoint_sharded_equals_serial () =
  let n = 4 and flows = 10 in
  let serial, serial_span, _ = outcome ~shards:1 ~n ~flows () in
  let sharded, sharded_span, fab = outcome ~shards:2 ~n ~flows () in
  Alcotest.(check bool) "semantic outcomes identical" true (serial = sharded);
  Alcotest.(check int) "no cross-shard ops on a disjoint workload" 0
    (Shard.cross_shard_ops fab.Fabric.group);
  (* Each shard retired its own pairs' moves through its own queue. *)
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d completed its moves" k)
        (n / 2)
        (Sched.stats (Fabric.sched_of fab k)).Sched.completed)
    [ 0; 1 ];
  (* Two controller CPUs overlap in virtual time. *)
  Alcotest.(check bool)
    (Printf.sprintf "sharded makespan no worse (%.4f <= %.4f)" sharded_span
       serial_span)
    true
    (sharded_span <= serial_span)

let prop_sharded_equals_serial =
  QCheck.Test.make ~name:"disjoint sharded moves == serial (random)" ~count:8
    QCheck.(triple (int_range 2 5) (int_range 1 12) (int_range 1 1000))
    (fun (n, flows, seed) ->
      let run shards =
        let semantic, _, _ = outcome ~seed ~shards ~n ~flows () in
        semantic
      in
      run 2 = run 1 && run 4 = run 1)

(* --- cross-shard moves ---------------------------------------------------- *)

let digest_of_ids ids =
  List.fold_left
    (fun acc id -> Hashing.combine acc (Int64.of_int id))
    (Hashing.fnv1a64 "events") ids

(* Per-flow processed sequences, folded in the (deterministic) key-list
   order. Identical across control planes whenever the move guarantees
   hold: loss-freedom pins the per-flow sets, order preservation the
   per-flow sequences. *)
let event_digest (tb : H.testbed) =
  List.fold_left
    (fun acc key ->
      Hashing.combine acc
        (digest_of_ids
           (Audit.processed_order ~filter:(Filter.of_key key) tb.H.fab.audit)))
    (Hashing.fnv1a64 "flows") tb.H.keys

let store_digest (tb : H.testbed) =
  let c1, a1, p1 = Opennf_nfs.Prads.stats tb.H.prads1 in
  let c2, a2, p2 = Opennf_nfs.Prads.stats tb.H.prads2 in
  (c1 + c2, a1 + a2, p1 + p2, Opennf_nfs.Prads.connection_count tb.H.prads2)

(* A full PRADS run: traffic to nf1, one OP move of everything to nf2
   at t=0.5, submitted through the shard group. *)
let prads_run ?resilience ?shards () =
  let tb = H.prads_pair ?resilience ?shards ~flows:20 ~rate:400.0 () in
  let result = ref None in
  H.run_with tb ~at:0.5 (fun () ->
      let spec =
        Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
          ~guarantee:Move.Order_preserving ~parallel:true ()
      in
      result :=
        Some (Proc.Ivar.read (Move.submit_sharded tb.H.fab.Fabric.group spec)));
  let report =
    match !result with
    | Some (Ok r) -> r
    | Some (Error e) -> Alcotest.fail ("move failed: " ^ Op_error.to_string e)
    | None -> Alcotest.fail "move never ran"
  in
  (tb, report)

let test_cross_shard_move_semantics () =
  let tb1, r1 = prads_run () in
  let tb2, r2 = prads_run ~shards:2 () in
  Alcotest.(check int) "handshake admitted the move" 1
    (Shard.cross_shard_ops tb2.H.fab.Fabric.group);
  Alcotest.(check int) "serial fabric has no cross-shard ops" 0
    (Shard.cross_shard_ops tb1.H.fab.Fabric.group);
  H.assert_loss_free tb2;
  H.assert_order_preserved_per_flow tb2;
  Alcotest.(check int) "same chunks as the serial move" r1.Move.per_chunks
    r2.Move.per_chunks;
  Alcotest.(check bool) "event digests agree" true
    (event_digest tb1 = event_digest tb2);
  Alcotest.(check bool) "store digests agree" true
    (store_digest tb1 = store_digest tb2)

let resilience =
  {
    Controller.call_timeout = 0.05;
    max_retries = 3;
    backoff = 0.01;
    liveness_misses = 4;
    probe_period = 0.1;
  }

(* The PR 2 fault injector on every controller<->NF link: duplication
   and jitter stress retries and reordering while the move crosses
   shards. The guarantees must hold anyway. *)
let test_cross_shard_move_under_faults () =
  let tb = H.prads_pair ~resilience ~shards:2 ~flows:15 ~rate:300.0 () in
  List.iter
    (fun name ->
      Faults.set_link tb.H.fab.faults ~name ~dup:0.15 ~jitter:0.0005 ())
    [ "ctrl->prads1"; "prads1->ctrl"; "ctrl->prads2"; "prads2->ctrl" ];
  let result = ref None in
  H.run_with tb ~at:0.5 (fun () ->
      let spec =
        Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
          ~guarantee:Move.Loss_free ~parallel:true ()
      in
      result :=
        Some (Proc.Ivar.read (Move.submit_sharded tb.H.fab.Fabric.group spec)));
  (match !result with
  | Some (Ok r) ->
    Alcotest.(check bool) "all flows carried" true (r.Move.per_chunks > 0)
  | Some (Error e) ->
    Alcotest.fail ("move under faults failed: " ^ Op_error.to_string e)
  | None -> Alcotest.fail "move never ran");
  H.assert_loss_free tb;
  Alcotest.(check int) "cross-shard handshake used" 1
    (Shard.cross_shard_ops tb.H.fab.Fabric.group)

(* Two conflicting cross-shard moves (there and back over the same
   filter): the handshake must serialize them on both shards, and the
   state must all return home. *)
let test_cross_shard_serialization () =
  let flows = 8 in
  let fab = Fabric.create ~seed:5 ~shards:2 () in
  let d1 = Dummy.create () and d2 = Dummy.create () in
  Dummy.seed_flows d1 (List.init flows (key_in_subnet 0));
  let src, _ =
    Fabric.add_nf fab ~shard:0 ~name:"src0" ~impl:(Dummy.impl d1)
      ~costs:Costs.dummy
  in
  let dst, _ =
    Fabric.add_nf fab ~shard:1 ~name:"dst0" ~impl:(Dummy.impl d2)
      ~costs:Costs.dummy
  in
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl (two_sided 0) src);
  let there =
    Move.spec ~src ~dst ~filter:(two_sided 0) ~guarantee:Move.Loss_free
      ~parallel:true ()
  in
  let back =
    Move.spec ~src:dst ~dst:src ~filter:(two_sided 0)
      ~guarantee:Move.Loss_free ~parallel:true ()
  in
  let results = ref [] in
  Engine.schedule_at fab.Fabric.engine 0.1 (fun () ->
      Proc.spawn fab.Fabric.engine (fun () ->
          let ivars =
            List.map (Move.submit_sharded fab.Fabric.group) [ there; back ]
          in
          results := List.map Proc.Ivar.read ivars));
  Fabric.run fab;
  let reports = List.map Op_error.ok_exn !results in
  List.iter
    (fun r ->
      Alcotest.(check int) "each leg carries every flow" flows
        r.Move.per_chunks)
    reports;
  Alcotest.(check int) "flows back at the source" flows (Dummy.flow_count d1);
  Alcotest.(check int) "destination drained" 0 (Dummy.flow_count d2);
  Alcotest.(check int) "both admissions crossed shards" 2
    (Shard.cross_shard_ops fab.Fabric.group);
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d never ran the legs together" k)
        1
        (Sched.stats (Fabric.sched_of fab k)).Sched.peak_active)
    [ 0; 1 ]

(* --- crash containment ---------------------------------------------------- *)

(* Pair 0 lives on shard 0, pair 1 on shard 1. Pair 1's source dies
   mid-transfer: its move fails typed, while shard 0's move — and its
   scheduler — never notice. *)
let test_crash_contained_to_one_shard () =
  let flows = 8 in
  let fab, pairs = sharded_bed ~resilience ~shards:2 ~n:2 ~flows () in
  let p0 = List.nth pairs 0 and p1 = List.nth pairs 1 in
  let healthy = spec_for ~filter:(two_sided 0) p0 in
  let doomed =
    spec_for ~filter:(two_sided 1)
      ~on_phase:(fun ph ->
        if ph = Move.Transfer_started then
          Faults.crash_now fab.Fabric.faults ~node:"src1")
      p1
  in
  let results, _ = run_sharded fab [ healthy; doomed ] in
  (match results with
  | [ ok; crashed ] ->
    let r = Op_error.ok_exn ok in
    Alcotest.(check int) "shard 0's move unaffected" flows r.Move.per_chunks;
    Alcotest.(check int) "shard 0's flows all arrived" flows
      (Dummy.imported_count p0.d2);
    (match crashed with
    | Error (Op_error.Nf_crashed { nf = "src1" }) -> ()
    | Ok _ -> Alcotest.fail "move across a crash must not succeed"
    | Error e -> Alcotest.fail ("unexpected error: " ^ Op_error.to_string e))
  | _ -> Alcotest.fail "expected two results");
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d retired its move" k)
        1
        (Sched.stats (Fabric.sched_of fab k)).Sched.completed)
    [ 0; 1 ]

(* --- single-shard smoke --------------------------------------------------- *)

(* With one shard the group is pure plumbing: submission degenerates to
   the plain scheduler, no cross-shard machinery engages, and the metric
   namespace contains no shard-derived names (part of the bit-identity
   contract with the unsharded control plane). *)
let test_one_shard_smoke () =
  let obs = Opennf_obs.Hub.create ~metrics:true () in
  let fab = Fabric.create ~seed:5 ~obs () in
  Alcotest.(check int) "default shard count" 1 (Fabric.shards fab);
  Alcotest.(check int) "group of one" 1 (Shard.count fab.Fabric.group);
  let d1 = Dummy.create () and d2 = Dummy.create () in
  Dummy.seed_flows d1 (List.init 6 (key_in_subnet 0));
  let src, _ =
    Fabric.add_nf fab ~name:"src0" ~impl:(Dummy.impl d1) ~costs:Costs.dummy
  in
  let dst, _ =
    Fabric.add_nf fab ~name:"dst0" ~impl:(Dummy.impl d2) ~costs:Costs.dummy
  in
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl (two_sided 0) src);
  let spec =
    Move.spec ~src ~dst ~filter:(two_sided 0) ~guarantee:Move.Loss_free
      ~parallel:true ()
  in
  let results, _ = run_sharded fab [ spec ] in
  let r = Op_error.ok_exn (List.hd results) in
  Alcotest.(check int) "move carried every flow" 6 r.Move.per_chunks;
  Alcotest.(check int) "no cross-shard ops" 0
    (Shard.cross_shard_ops fab.Fabric.group);
  let contains_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  let metric_names =
    List.map fst (Opennf_obs.Metrics.counters (Opennf_obs.Hub.metrics obs))
  in
  List.iter
    (fun name ->
      let shardish = contains_sub name ".shard" || contains_sub name "shard." in
      Alcotest.(check bool)
        (Printf.sprintf "no shard-derived metric at shards=1 (%s)" name)
        false shardish)
    metric_names

let test_sharded_metrics_namespaced () =
  let obs = Opennf_obs.Hub.create ~metrics:true () in
  let fab = Fabric.create ~seed:5 ~shards:2 ~obs () in
  let d1 = Dummy.create () and d2 = Dummy.create () in
  Dummy.seed_flows d1 (List.init 4 (key_in_subnet 0));
  let src, _ =
    Fabric.add_nf fab ~shard:0 ~name:"src0" ~impl:(Dummy.impl d1)
      ~costs:Costs.dummy
  in
  let dst, _ =
    Fabric.add_nf fab ~shard:1 ~name:"dst0" ~impl:(Dummy.impl d2)
      ~costs:Costs.dummy
  in
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl (two_sided 0) src);
  let spec =
    Move.spec ~src ~dst ~filter:(two_sided 0) ~guarantee:Move.Loss_free
      ~parallel:true ()
  in
  ignore (run_sharded fab [ spec ]);
  let metrics = Opennf_obs.Hub.metrics obs in
  Alcotest.(check int) "cross-shard counter recorded the move" 1
    (Opennf_obs.Metrics.counter_value metrics "shard.cross_ops");
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d scheduler admitted" k)
        true
        (Opennf_obs.Metrics.counter_value metrics
           (Printf.sprintf "sched.admitted.shard%d" k)
        >= 1))
    [ 0; 1 ]

let suite =
  [
    Alcotest.test_case "partition basics" `Quick test_partition_basics;
    Alcotest.test_case "disjoint sharded == serial" `Quick
      test_disjoint_sharded_equals_serial;
    Alcotest.test_case "cross-shard move: semantics + digests" `Quick
      test_cross_shard_move_semantics;
    Alcotest.test_case "cross-shard move under link faults" `Quick
      test_cross_shard_move_under_faults;
    Alcotest.test_case "conflicting cross-shard moves serialize" `Quick
      test_cross_shard_serialization;
    Alcotest.test_case "crash contained to one shard" `Quick
      test_crash_contained_to_one_shard;
    Alcotest.test_case "one-shard smoke: plumbing only" `Quick
      test_one_shard_smoke;
    Alcotest.test_case "sharded metric namespace" `Quick
      test_sharded_metrics_namespaced;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_partition_total_stable; prop_sharded_equals_serial ]
