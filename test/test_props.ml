(* Randomized end-to-end properties: the §5.1 guarantees must hold for
   every workload, not just the calibrated benchmarks. Each QCheck case
   builds a fresh two-instance testbed with random flow counts, rates,
   switch timing and move timing, runs the move variant under test, and
   checks the audit ledger. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
open Opennf_net
open Opennf
module H = Helpers

type config = {
  seed : int;
  flows : int;
  rate : float;
  packet_out_rate : float;
  move_after : float;  (* Fraction of the trace before the move starts. *)
  parallel : bool;
  early_release : bool;
}

let config_gen =
  QCheck.Gen.(
    map
      (fun (seed, flows, rate_k, po_k, move_after, parallel, early_release) ->
        {
          seed;
          flows = 5 + flows;
          rate = 200.0 +. (100.0 *. float_of_int rate_k);
          packet_out_rate = 500.0 +. (500.0 *. float_of_int po_k);
          move_after = 0.2 +. (0.06 *. float_of_int move_after);
          parallel;
          early_release;
        })
      (tup7 (int_bound 10_000) (int_bound 60) (int_bound 20) (int_bound 6)
         (int_bound 9) bool bool))

let print_config c =
  Printf.sprintf
    "{seed=%d flows=%d rate=%.0f po=%.0f move@%.2f pl=%b er=%b}" c.seed c.flows
    c.rate c.packet_out_rate c.move_after c.parallel c.early_release

let config_arb = QCheck.make ~print:print_config config_gen

(* Build the bed, run the move at the configured point, return the bed. *)
let run_move_case c ~guarantee =
  let tb =
    H.prads_pair ~seed:c.seed ~flows:c.flows ~rate:c.rate
      ~packet_out_rate:c.packet_out_rate ()
  in
  let handshakes = 2.0 *. float_of_int c.flows /. c.rate in
  let trace_len = handshakes +. 2.0 in
  let at = 0.05 +. (c.move_after *. trace_len) in
  H.run_with tb ~at (fun () ->
      ignore
        (Move.run_exn tb.H.fab.ctrl
           (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any ~guarantee
              ~parallel:c.parallel ~early_release:c.early_release ())));
  tb

let no_loss tb =
  Audit.lost tb.H.fab.audit ~nfs:H.nf_names = []
  && Audit.duplicated tb.H.fab.audit = []

let state_fully_moved tb =
  Opennf_nfs.Prads.connection_count tb.H.prads1 = 0

let prop_loss_free_move_never_loses =
  QCheck.Test.make ~name:"loss-free move: no loss, no duplication (random)"
    ~count:25 config_arb (fun c ->
      let tb = run_move_case c ~guarantee:Move.Loss_free in
      no_loss tb && state_fully_moved tb)

let prop_op_move_preserves_order =
  QCheck.Test.make
    ~name:"order-preserving move: switch order respected (random)" ~count:20
    config_arb (fun c ->
      (* Plain OP (no early release) guarantees global ordering. *)
      let c = { c with early_release = false } in
      let tb = run_move_case c ~guarantee:Move.Order_preserving in
      no_loss tb
      && Audit.order_violations tb.H.fab.audit = []
      && Audit.arrival_order_violations tb.H.fab.audit = [])

let prop_op_er_move_preserves_per_flow_order =
  QCheck.Test.make
    ~name:"OP move with early release: per-flow order (random)" ~count:15
    config_arb (fun c ->
      let c = { c with early_release = true; parallel = true } in
      let tb = run_move_case c ~guarantee:Move.Order_preserving in
      no_loss tb
      && List.for_all
           (fun key ->
             Audit.order_violations ~filter:(Filter.of_key key) tb.H.fab.audit
             = [])
           tb.H.keys)

let prop_ng_move_moves_state =
  QCheck.Test.make
    ~name:"no-guarantee move: state relocates, flows continue (random)"
    ~count:20 config_arb (fun c ->
      let tb = run_move_case c ~guarantee:Move.No_guarantee in
      (* No loss-freedom claim — but no duplication either, and the
         state must end up at the destination. *)
      Audit.duplicated tb.H.fab.audit = [] && state_fully_moved tb)

let prop_copy_is_non_disruptive =
  QCheck.Test.make ~name:"copy: never disturbs traffic (random)" ~count:15
    config_arb (fun c ->
      let tb =
        H.prads_pair ~seed:c.seed ~flows:c.flows ~rate:c.rate
          ~packet_out_rate:c.packet_out_rate ()
      in
      H.run_with tb ~at:0.5 (fun () ->
          ignore
            (Copy_op.run_exn tb.H.fab.ctrl ~src:tb.H.nf1 ~dst:tb.H.nf2
               ~filter:Filter.any
               ~scope:[ Opennf_state.Scope.Per; Opennf_state.Scope.Multi ]
               ~parallel:c.parallel ()));
      no_loss tb
      && Audit.order_violations tb.H.fab.audit = []
      && Opennf_nfs.Prads.connection_count tb.H.prads1 > 0)

(* A partial-filter move: only a random half of the flows moves; the
   rest must stay untouched at the source. *)
let prop_partial_move_respects_filter =
  QCheck.Test.make ~name:"filtered move: untouched flows stay (random)"
    ~count:15 config_arb (fun c ->
      let tb =
        H.prads_pair ~seed:c.seed ~flows:(max 10 c.flows) ~rate:c.rate ()
      in
      let moved, kept =
        List.partition
          (fun (k : Flow.key) -> Ipaddr.to_int k.Flow.src_ip mod 2 = 0)
          tb.H.keys
      in
      H.run_with tb ~at:0.6 (fun () ->
          List.iter
            (fun key ->
              ignore
                (Move.run_exn tb.H.fab.ctrl
                   (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2
                      ~filter:(Filter.of_key key) ~guarantee:Move.Loss_free
                      ~parallel:c.parallel ())))
            moved);
      no_loss tb
      && Opennf_nfs.Prads.connection_count tb.H.prads1 = List.length kept
      && Opennf_nfs.Prads.connection_count tb.H.prads2 = List.length moved)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_loss_free_move_never_loses;
      prop_op_move_preserves_order;
      prop_op_er_move_preserves_per_flow_order;
      prop_ng_move_moves_state;
      prop_copy_is_non_disruptive;
      prop_partial_move_respects_filter;
    ]
