(* End-to-end NAT integration: conntrack entries must follow their flows
   for mid-flow packets to stay valid at the destination (§7's iptables
   scenario). *)

module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf

type bed = {
  fab : Fabric.t;
  nf1 : Controller.nf;
  nf2 : Controller.nf;
  nat1 : Opennf_nfs.Nat.t;
  nat2 : Opennf_nfs.Nat.t;
  keys : Flow.key list;
}

let nat_pair ?(flows = 20) () =
  let fab = Fabric.create ~seed:37 () in
  let nat1 = Opennf_nfs.Nat.create ~port_base:20000 () in
  let nat2 = Opennf_nfs.Nat.create ~port_base:40000 () in
  let nf1, _ =
    Fabric.add_nf fab ~name:"nat1" ~impl:(Opennf_nfs.Nat.impl nat1)
      ~costs:Costs.iptables
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"nat2" ~impl:(Opennf_nfs.Nat.impl nat2)
      ~costs:Costs.iptables
  in
  let gen = Opennf_trace.Gen.create ~seed:23 () in
  let schedule, keys =
    Opennf_trace.Gen.steady_flows gen ~flows ~rate:1000.0 ~start:0.05
      ~duration:2.0 ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  { fab; nf1; nf2; nat1; nat2; keys }

let test_lf_move_keeps_connections_valid () =
  let b = nat_pair () in
  Helpers.run_at b.fab ~at:1.0 (fun () ->
      ignore
        (Move.run_exn b.fab.ctrl
           (Move.spec ~src:b.nf1 ~dst:b.nf2 ~filter:Filter.any
              ~guarantee:Move.Loss_free ~parallel:true ())));
  (* Every mid-flow packet found a conntrack entry at the destination. *)
  Alcotest.(check int) "no invalid packets at nat2" 0
    (Opennf_nfs.Nat.invalid_count b.nat2);
  Alcotest.(check int) "all entries relocated" 20
    (Opennf_nfs.Nat.entry_count b.nat2);
  (* Translations survive the move: ports from nat1's pool, not nat2's. *)
  List.iter
    (fun key ->
      match Opennf_nfs.Nat.translation_of b.nat2 key with
      | Some port ->
        Alcotest.(check bool) "port from the original pool" true (port < 40000)
      | None -> Alcotest.fail "translation missing after move")
    b.keys

let test_reroute_without_state_breaks_connections () =
  (* The anti-baseline: flip the route without moving conntrack state and
     every subsequent packet is invalid at the new instance. *)
  let b = nat_pair () in
  Helpers.run_at b.fab ~at:1.0 (fun () ->
      Controller.set_route b.fab.ctrl Filter.any b.nf2);
  Alcotest.(check bool) "invalid packets at nat2" true
    (Opennf_nfs.Nat.invalid_count b.nat2 > 0);
  Alcotest.(check int) "no entries at nat2 (non-SYN cannot create them)" 0
    (Opennf_nfs.Nat.entry_count b.nat2)

let suite =
  [
    Alcotest.test_case "NAT: loss-free move keeps flows valid" `Quick
      test_lf_move_keeps_connections_valid;
    Alcotest.test_case "NAT: reroute-only breaks flows" `Quick
      test_reroute_without_state_breaks_connections;
  ]
