(* State backends: the Local/Shared/Replicated decoupling.

   Unit tests drive a toy exporter/applier pair over the delta link
   (batching, delete propagation, dedup, gaps, promote, drain); the
   integration tests put PRADS pairs on real backends and check the
   paper-level properties: a shared-store move transfers nothing, a
   replicated standby tracks its primary byte for byte, and a surprise
   crash at ANY delta boundary leaves the promoted standby exactly equal
   to the primary's frozen state (loss-freedom and duplicate-freedom of
   the state stream). *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Faults = Opennf_sim.Faults
module Costs = Opennf_sb.Costs
module Nf_api = Opennf_sb.Nf_api
module Scope = Opennf_state.Scope
module Chunk = Opennf_state.Chunk
module Backend = Opennf_state.Backend
module Prads = Opennf_nfs.Prads
open Opennf_net
open Opennf
module H = Helpers

(* --- state digests ------------------------------------------------------- *)

let chunk_str (c : Chunk.t) = c.Chunk.kind ^ "|" ^ c.Chunk.data

let perflow_digest (i : Nf_api.impl) =
  i.Nf_api.list_perflow Filter.any
  |> List.filter_map i.Nf_api.export_perflow
  |> List.map chunk_str |> List.sort String.compare

let multiflow_digest (i : Nf_api.impl) =
  i.Nf_api.list_multiflow Filter.any
  |> List.filter_map i.Nf_api.export_multiflow
  |> List.map chunk_str |> List.sort String.compare

let digests_equal a b =
  perflow_digest a = perflow_digest b && multiflow_digest a = multiflow_digest b

let check_digests_equal name a b =
  Alcotest.(check (list string)) (name ^ ": per-flow state equal")
    (perflow_digest a) (perflow_digest b);
  Alcotest.(check (list string)) (name ^ ": multi-flow state equal")
    (multiflow_digest a) (multiflow_digest b)

(* --- store registry ------------------------------------------------------ *)

let int_id : int ref Stdlib.Type.Id.t = Stdlib.Type.Id.make ()
let str_id : string ref Stdlib.Type.Id.t = Stdlib.Type.Id.make ()

let test_get_store_identity () =
  let b = Backend.shared () in
  let r = Backend.get_store b ~name:"x" ~id:int_id ~make:(fun () -> ref 0) in
  r := 5;
  let r' = Backend.get_store b ~name:"x" ~id:int_id ~make:(fun () -> ref 0) in
  Alcotest.(check bool) "same object" true (r == r');
  Alcotest.(check int) "writes visible through both handles" 5 !r';
  let p1 = Prads.create ~backend:b () in
  let p2 = Prads.create ~backend:b () in
  Alcotest.(check bool) "two PRADS over one shared backend share state" true
    (p1 == p2)

let test_get_store_type_safety () =
  let b = Backend.shared () in
  ignore (Backend.get_store b ~name:"x" ~id:int_id ~make:(fun () -> ref 0));
  match Backend.get_store b ~name:"x" ~id:str_id ~make:(fun () -> ref "") with
  | _ -> Alcotest.fail "name reuse at another type must be rejected"
  | exception Invalid_argument _ -> ()

let test_routing_predicates () =
  let l = Backend.local () in
  let s = Backend.shared () in
  let engine = Engine.create () in
  let pb, sb = Backend.replicated_pair engine () in
  Alcotest.(check bool) "a shared backend is its own store" true
    (Backend.same_store s s);
  Alcotest.(check bool) "a local backend is its own store" true
    (Backend.same_store l l);
  Alcotest.(check bool) "distinct backends are distinct stores" false
    (Backend.same_store l (Backend.local ()));
  Alcotest.(check bool) "a replicated end is never 'same store'" false
    (Backend.same_store pb pb);
  Alcotest.(check bool) "primary->standby is a replica pair" true
    (Backend.replica_pair ~primary:pb ~standby:sb);
  Alcotest.(check bool) "standby->primary is not" false
    (Backend.replica_pair ~primary:sb ~standby:pb);
  Alcotest.(check bool) "local covers All" true (Backend.covers l Scope.All);
  Alcotest.(check bool) "replicated covers Per" true (Backend.covers pb Scope.Per);
  Alcotest.(check bool) "replicated does not cover All" false
    (Backend.covers pb Scope.All);
  Backend.promote sb;
  Alcotest.(check bool) "a promoted standby leaves the pair" false
    (Backend.replica_pair ~primary:pb ~standby:sb)

(* --- toy delta link ------------------------------------------------------ *)

(* A replicated pair whose "NF" is a Filter-keyed string table: the
   exporter reads the primary table, the applier writes the standby
   table, and every delta-link behavior is observable in isolation. *)
let toy ?batch_bytes ?faults engine =
  let pb, sb =
    Backend.replicated_pair engine ~name:"toy" ?batch_bytes ?faults ()
  in
  let pstore = Filter.Table.create 16 in
  let sstore = Filter.Table.create 16 in
  Backend.set_exporter pb (fun _scope flowid ->
      Filter.Table.find_opt pstore flowid
      |> Option.map (fun v -> Chunk.v ~kind:"toy" v));
  Backend.set_applier sb (fun _scope flowid chunk ->
      match chunk with
      | None -> Filter.Table.remove sstore flowid
      | Some c -> Filter.Table.replace sstore flowid c.Chunk.data);
  (pb, sb, pstore, sstore)

let key i = Filter.of_src_host (Ipaddr.of_int (i + 1))

let test_toy_replication_and_delete () =
  let engine = Engine.create () in
  let pb, sb, pstore, sstore = toy engine in
  Engine.schedule_at engine 0.0 (fun () ->
      Filter.Table.replace pstore (key 1) "one";
      Filter.Table.replace pstore (key 2) "two";
      Backend.note pb Scope.Multi (key 1);
      Backend.note pb Scope.Multi (key 2);
      Backend.note pb Scope.Multi (key 2);
      (* re-mark coalesces *)
      Backend.flush pb);
  Engine.schedule_at engine 0.1 (fun () ->
      (* A deletion of a sent key propagates; a dirty key that never
         existed (and was never sent) sends nothing at all. *)
      Filter.Table.remove pstore (key 1);
      Backend.note pb Scope.Multi (key 1);
      Backend.note pb Scope.Multi (key 9);
      Backend.flush pb);
  Engine.run engine;
  Alcotest.(check (option string)) "key 2 replicated" (Some "two")
    (Filter.Table.find_opt sstore (key 2));
  Alcotest.(check bool) "key 1 deleted on the standby" false
    (Filter.Table.mem sstore (key 1));
  let st = Backend.stats sb in
  Alcotest.(check int) "2 puts + 1 delete crossed the wire" 3
    st.Backend.entries_sent;
  Alcotest.(check int) "every entry applied" 3 st.Backend.entries_applied;
  Alcotest.(check int) "no dups" 0 st.Backend.dup_frames;
  Alcotest.(check bool) "delta bytes accounted" true
    (Backend.delta_bytes pb > 0)

let test_toy_batching () =
  let count_frames ?batch_bytes () =
    let engine = Engine.create () in
    let pb, sb, pstore, _ = toy ?batch_bytes engine in
    Engine.schedule_at engine 0.0 (fun () ->
        for i = 0 to 9 do
          Filter.Table.replace pstore (key i) (string_of_int i);
          Backend.note pb Scope.Multi (key i)
        done;
        Backend.flush pb);
    Engine.run engine;
    let st = Backend.stats sb in
    Alcotest.(check int) "all entries arrive regardless of batching" 10
      st.Backend.entries_applied;
    st.Backend.frames_sent
  in
  Alcotest.(check int) "no budget: one frame per flush" 1 (count_frames ());
  Alcotest.(check bool) "a byte budget splits the flush into frames" true
    (count_frames ~batch_bytes:100 () > 1)

let test_toy_dup_frames_dropped () =
  let engine = Engine.create () in
  let faults = Faults.create engine ~seed:3 () in
  Faults.set_link faults ~name:"toy.delta" ~dup:1.0 ();
  let pb, sb, pstore, sstore = toy ~faults engine in
  Engine.schedule_at engine 0.0 (fun () ->
      Filter.Table.replace pstore (key 1) "a";
      Backend.note pb Scope.Multi (key 1);
      Backend.flush pb);
  Engine.schedule_at engine 0.1 (fun () ->
      Filter.Table.replace pstore (key 1) "b";
      Backend.note pb Scope.Multi (key 1);
      Backend.flush pb);
  Engine.run engine;
  Alcotest.(check (option string)) "latest value wins" (Some "b")
    (Filter.Table.find_opt sstore (key 1));
  let st = Backend.stats sb in
  Alcotest.(check int) "every frame's duplicate was dropped by seq"
    st.Backend.frames_sent st.Backend.dup_frames;
  Alcotest.(check int) "each frame applied exactly once"
    st.Backend.frames_sent st.Backend.frames_applied

let test_toy_gap_is_counted_and_healed () =
  let engine = Engine.create () in
  let faults = Faults.create engine ~seed:3 () in
  let pb, sb, pstore, sstore = toy ~faults engine in
  Engine.schedule_at engine 0.0 (fun () ->
      (* Frame 1 is eaten by the link. *)
      Faults.set_link faults ~name:"toy.delta" ~drop:1.0 ();
      Filter.Table.replace pstore (key 1) "lost";
      Backend.note pb Scope.Multi (key 1);
      Backend.flush pb);
  Engine.schedule_at engine 0.1 (fun () ->
      Faults.clear_link faults ~name:"toy.delta";
      Filter.Table.replace pstore (key 1) "resent";
      Backend.note pb Scope.Multi (key 1);
      Backend.flush pb);
  Engine.run engine;
  let st = Backend.stats sb in
  Alcotest.(check int) "the surviving frame arrived past a gap" 1
    st.Backend.gap_frames;
  Alcotest.(check (option string)) "full-value entries self-heal"
    (Some "resent")
    (Filter.Table.find_opt sstore (key 1))

let test_toy_promote_drops_in_flight () =
  let engine = Engine.create () in
  let pb, sb, pstore, sstore = toy engine in
  Engine.schedule_at engine 0.0 (fun () ->
      Filter.Table.replace pstore (key 1) "late";
      Backend.note pb Scope.Multi (key 1);
      Backend.flush pb;
      (* Promote while the frame is still on the wire (2 ms latency):
         the standby now owns its state; the frame must not land. *)
      Backend.promote sb);
  Engine.run engine;
  Alcotest.(check bool) "in-flight frame discarded after promote" false
    (Filter.Table.mem sstore (key 1));
  Alcotest.(check int) "and counted as stale" 1
    (Backend.stats sb).Backend.stale_frames

let test_toy_drain_blocks_until_applied () =
  let engine = Engine.create () in
  let pb, _sb, pstore, sstore = toy engine in
  let after_drain = ref None in
  Proc.spawn engine (fun () ->
      Filter.Table.replace pstore (key 1) "v";
      Backend.note pb Scope.Multi (key 1);
      Backend.drain pb;
      after_drain := Some (Filter.Table.find_opt sstore (key 1)));
  Engine.run engine;
  Alcotest.(check (option (option string)))
    "drain returns only once the standby applied the flush"
    (Some (Some "v")) !after_drain

(* --- PRADS over a shared backend ----------------------------------------- *)

(* Two instances on one store; traffic starts on nf1, a mid-run move
   shifts it to nf2. The move must transfer nothing: same store. *)
let test_shared_move_is_metadata_flip () =
  let fab = Fabric.create ~seed:7 () in
  let b = Backend.shared () in
  let prads = Prads.create ~backend:b () in
  let nf1, _ =
    Fabric.add_nf ~backend:b fab ~name:"prads1" ~impl:(Prads.impl prads)
      ~costs:Costs.prads
  in
  let nf2, _ =
    Fabric.add_nf ~backend:b fab ~name:"prads2" ~impl:(Prads.impl prads)
      ~costs:Costs.prads
  in
  let gen = Opennf_trace.Gen.create ~seed:8 () in
  let schedule, keys =
    Opennf_trace.Gen.steady_flows gen ~flows:20 ~rate:500.0 ~start:0.05
      ~duration:1.0 ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  let report = ref None in
  H.run_at fab ~at:0.5 (fun () ->
      match
        Move.run fab.ctrl
          (Move.spec ~src:nf1 ~dst:nf2 ~filter:Filter.any
             ~guarantee:Move.Loss_free ())
      with
      | Ok r -> report := Some r
      | Error e -> Alcotest.fail (Op_error.to_string e));
  let r = Option.get !report in
  Alcotest.(check int) "0 state bytes moved" 0 r.Move.state_bytes;
  Alcotest.(check int) "0 per-flow chunks moved" 0 r.Move.per_chunks;
  Alcotest.(check int) "0 multi-flow chunks moved" 0 r.Move.multi_chunks;
  Alcotest.(check (list int)) "loss-free" []
    (Audit.lost fab.audit ~nfs:[ "prads1"; "prads2" ]);
  Alcotest.(check (list int)) "duplicate-free" [] (Audit.duplicated fab.audit);
  Alcotest.(check int) "every flow in the one store" (List.length keys)
    (Prads.connection_count prads)

(* Shared vs local oracle under random churn: the same scenario run the
   classic way (local stores, real state transfer) and the shared way
   must agree on everything observable. *)
type churn_cfg = { seed : int; flows : int; rate : float; move_at : float }

let churn_gen =
  QCheck.Gen.(
    map
      (fun (seed, flows, rate_k, at_k) ->
        {
          seed;
          flows = 3 + flows;
          rate = 200.0 +. (100.0 *. float_of_int rate_k);
          move_at = 0.2 +. (0.15 *. float_of_int at_k);
        })
      (tup4 (int_bound 10_000) (int_bound 20) (int_bound 6) (int_bound 4)))

let churn_arb =
  QCheck.make
    ~print:(fun c ->
      Printf.sprintf "{seed=%d flows=%d rate=%.0f move_at=%.2f}" c.seed c.flows
        c.rate c.move_at)
    churn_gen

let run_local_oracle c =
  let tb = H.prads_pair ~seed:c.seed ~flows:c.flows ~rate:c.rate () in
  let report = ref None in
  H.run_with tb ~at:c.move_at (fun () ->
      match
        Move.run tb.H.fab.ctrl
          (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
             ~guarantee:Move.Loss_free ())
      with
      | Ok r -> report := Some r
      | Error e -> Alcotest.fail (Op_error.to_string e));
  (tb, Option.get !report)

let run_shared c =
  let fab = Fabric.create ~seed:c.seed () in
  let b = Backend.shared () in
  let prads = Prads.create ~backend:b () in
  let nf1, _ =
    Fabric.add_nf ~backend:b fab ~name:"prads1" ~impl:(Prads.impl prads)
      ~costs:Costs.prads
  in
  let nf2, _ =
    Fabric.add_nf ~backend:b fab ~name:"prads2" ~impl:(Prads.impl prads)
      ~costs:Costs.prads
  in
  let gen = Opennf_trace.Gen.create ~seed:(c.seed + 1) () in
  let schedule, _ =
    Opennf_trace.Gen.steady_flows gen ~flows:c.flows ~rate:c.rate ~start:0.05
      ~duration:2.0 ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  let report = ref None in
  H.run_at fab ~at:c.move_at (fun () ->
      match
        Move.run fab.ctrl
          (Move.spec ~src:nf1 ~dst:nf2 ~filter:Filter.any
             ~guarantee:Move.Loss_free ())
      with
      | Ok r -> report := Some r
      | Error e -> Alcotest.fail (Op_error.to_string e));
  (fab, prads, Option.get !report)

let prop_shared_matches_local_oracle =
  QCheck.Test.make ~name:"shared backend vs local oracle (random churn)"
    ~count:10 churn_arb (fun c ->
      let tb, local_report = run_local_oracle c in
      let fab, prads, shared_report = run_shared c in
      let nfs = [ "prads1"; "prads2" ] in
      let local_pkts, _, _ = Prads.stats tb.H.prads1 in
      let local_pkts2, _, _ = Prads.stats tb.H.prads2 in
      let shared_pkts, _, _ = Prads.stats prads in
      Audit.lost fab.audit ~nfs = []
      && Audit.duplicated fab.audit = []
      && Audit.lost tb.H.fab.audit ~nfs = []
      && shared_report.Move.state_bytes = 0
      && local_report.Move.state_bytes > 0
      && Prads.connection_count prads
         = Prads.connection_count tb.H.prads1
           + Prads.connection_count tb.H.prads2
      && shared_pkts = local_pkts + local_pkts2)

(* --- PRADS over a replicated pair ---------------------------------------- *)

type rbed = {
  fab : Fabric.t;
  nf1 : Controller.nf;
  nf2 : Controller.nf;
  prads1 : Prads.t;
  prads2 : Prads.t;
  pb : Backend.t;
  sb : Backend.t;
  last_at : float;
}

(* Mirrors H.prads_pair exactly (same seeds, same schedule) so a
   replicated run can be compared 1:1 against the plain local run. *)
let replicated_bed ?(seed = 7) ?(flows = 6) ?(rate = 300.0) ?(duration = 0.5)
    ?batch_bytes () =
  let fab = Fabric.create ~seed () in
  let pb, sb =
    Backend.replicated_pair fab.engine ~name:"fo" ?batch_bytes
      ~faults:fab.faults ()
  in
  let prads1 = Prads.create ~backend:pb () in
  let prads2 = Prads.create ~backend:sb () in
  let nf1, _ =
    Fabric.add_nf ~backend:pb fab ~name:"prads1" ~impl:(Prads.impl prads1)
      ~costs:Costs.prads
  in
  let nf2, _ =
    Fabric.add_nf ~backend:sb fab ~name:"prads2" ~impl:(Prads.impl prads2)
      ~costs:Costs.prads
  in
  let gen = Opennf_trace.Gen.create ~seed:(seed + 1) () in
  let schedule, _ =
    Opennf_trace.Gen.steady_flows gen ~flows ~rate ~start:0.05 ~duration ()
  in
  let last_at =
    List.fold_left (fun acc (t, _) -> Float.max acc t) 0.0 schedule
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  { fab; nf1; nf2; prads1; prads2; pb; sb; last_at }

let test_replicated_standby_tracks_primary () =
  let b = replicated_bed () in
  Fabric.run b.fab;
  check_digests_equal "catch-up" (Prads.impl b.prads1) (Prads.impl b.prads2);
  let st = Backend.stats b.sb in
  Alcotest.(check int) "fault-free: every frame applied"
    st.Backend.frames_sent st.Backend.frames_applied;
  Alcotest.(check int) "no dups" 0 st.Backend.dup_frames;
  Alcotest.(check int) "no gaps" 0 st.Backend.gap_frames;
  Alcotest.(check bool) "the stream cost bytes" true
    (Backend.delta_bytes b.sb > 0);
  (* The primary behaves exactly like a backend-less local instance:
     replication rides the packet path and adds nothing to it. *)
  let tb = H.prads_pair ~seed:7 ~flows:6 ~rate:300.0 ~duration:0.5 () in
  Fabric.run tb.H.fab;
  check_digests_equal "local oracle" (Prads.impl tb.H.prads1)
    (Prads.impl b.prads1);
  Alcotest.(check (list int)) "identical processing order"
    (Audit.processed_order ~nf:"prads1" tb.H.fab.audit)
    (Audit.processed_order ~nf:"prads1" b.fab.audit)

let test_replicated_move_is_zero_bytes () =
  let b = replicated_bed ~duration:0.8 () in
  let report = ref None in
  H.run_at b.fab ~at:0.4 (fun () ->
      match
        Move.run b.fab.ctrl
          (Move.spec ~src:b.nf1 ~dst:b.nf2 ~filter:Filter.any
             ~guarantee:Move.Loss_free ())
      with
      | Ok r -> report := Some r
      | Error e -> Alcotest.fail (Op_error.to_string e));
  let r = Option.get !report in
  Alcotest.(check int) "move over the delta stream: 0 state bytes" 0
    r.Move.state_bytes;
  Alcotest.(check (list int)) "loss-free" []
    (Audit.lost b.fab.audit ~nfs:[ "prads1"; "prads2" ])

(* Crash the primary at [crash_time], promote the standby once every
   in-flight frame has landed, and leave the rest of the traffic to be
   dropped at the dead instance (packet loss during a surprise failure
   is the datapath's problem; state loss is ours). *)
let run_crash ?dup ?(seed = 7) ?(flows = 4) ?(rate = 100.0) ?(duration = 0.3)
    ~crash_time () =
  let b = replicated_bed ~seed ~flows ~rate ~duration () in
  (match dup with
  | Some d -> Faults.set_link b.fab.faults ~name:"fo.delta" ~dup:d ()
  | None -> ());
  Faults.crash_at b.fab.faults ~node:"prads1" crash_time;
  Engine.schedule_at b.fab.engine
    (Float.max crash_time b.last_at +. 0.2)
    (fun () -> Backend.promote b.sb);
  Fabric.run b.fab;
  b

(* Every delta boundary of the scenario: frames are cut when a packet is
   processed, so the instants strictly between consecutive processings
   (plus one before the first and one after the last) enumerate every
   point the crash can split the stream. *)
let delta_boundaries () =
  let b = replicated_bed ~flows:4 ~rate:100.0 ~duration:0.3 () in
  Fabric.run b.fab;
  let times =
    Audit.processed_order ~nf:"prads1" b.fab.audit
    |> List.filter_map (fun id -> Audit.process_time b.fab.audit ~pkt:id)
  in
  let rec mids = function
    | a :: (bt :: _ as rest) ->
      if bt > a then ((a +. bt) /. 2.0) :: mids rest else mids rest
    | _ -> []
  in
  match times with
  | [] -> Alcotest.fail "scenario processed no packets"
  | t0 :: _ ->
    let last = List.fold_left Float.max 0.0 times in
    ((t0 /. 2.0) :: mids times) @ [ last +. 0.05 ]

let test_crash_at_every_delta_boundary () =
  let boundaries = delta_boundaries () in
  Alcotest.(check bool) "enough boundaries to mean anything" true
    (List.length boundaries > 10);
  List.iter
    (fun crash_time ->
      let b = run_crash ~crash_time () in
      if not (digests_equal (Prads.impl b.prads1) (Prads.impl b.prads2)) then
        Alcotest.failf
          "standby != frozen primary after crash at t=%.6f (crash between \
           frames must lose no state)"
          crash_time)
    boundaries

let test_crash_boundaries_with_duplication () =
  (* Same sweep (thinned) with every delta frame duplicated: seq dedup
     must make re-delivery invisible. *)
  let boundaries = delta_boundaries () in
  List.iteri
    (fun i crash_time ->
      if i mod 3 = 0 then begin
        let b = run_crash ~dup:1.0 ~crash_time () in
        if not (digests_equal (Prads.impl b.prads1) (Prads.impl b.prads2)) then
          Alcotest.failf "state diverged under frame duplication at t=%.6f"
            crash_time;
        if
          crash_time > 0.06
          && (Backend.stats b.sb).Backend.dup_frames = 0
        then Alcotest.failf "dup=1.0 but no duplicate frame was dropped"
      end)
    boundaries

type crash_cfg = {
  c_seed : int;
  c_flows : int;
  c_rate : float;
  c_crash : float;
  c_dup : float;
  c_jitter : float;
}

let crash_gen =
  QCheck.Gen.(
    map
      (fun (seed, flows, rate_k, crash_k, dup_k, jitter_k) ->
        {
          c_seed = seed;
          c_flows = 3 + flows;
          c_rate = 150.0 +. (75.0 *. float_of_int rate_k);
          c_crash = 0.05 +. (0.055 *. float_of_int crash_k);
          c_dup = 0.25 *. float_of_int dup_k;
          c_jitter = 0.0005 *. float_of_int jitter_k;
        })
      (tup6 (int_bound 10_000) (int_bound 12) (int_bound 6) (int_bound 10)
         (int_bound 3) (int_bound 2)))

let crash_arb =
  QCheck.make
    ~print:(fun c ->
      Printf.sprintf "{seed=%d flows=%d rate=%.0f crash=%.3f dup=%.2f jit=%.4f}"
        c.c_seed c.c_flows c.c_rate c.c_crash c.c_dup c.c_jitter)
    crash_gen

let prop_replicated_survives_random_crash =
  QCheck.Test.make
    ~name:"standby == frozen primary at promote (random churn+crash)"
    ~count:12 crash_arb (fun c ->
      let b = replicated_bed ~seed:c.c_seed ~flows:c.c_flows ~rate:c.c_rate
          ~duration:0.6 ()
      in
      if c.c_dup > 0.0 || c.c_jitter > 0.0 then
        Faults.set_link b.fab.faults ~name:"fo.delta" ~dup:c.c_dup
          ~jitter:c.c_jitter ();
      Faults.crash_at b.fab.faults ~node:"prads1" c.c_crash;
      Engine.schedule_at b.fab.engine
        (Float.max c.c_crash b.last_at +. 0.3)
        (fun () -> Backend.promote b.sb);
      Fabric.run b.fab;
      digests_equal (Prads.impl b.prads1) (Prads.impl b.prads2))

let suite =
  [
    Alcotest.test_case "store registry: one name, one object" `Quick
      test_get_store_identity;
    Alcotest.test_case "store registry: type witness enforced" `Quick
      test_get_store_type_safety;
    Alcotest.test_case "routing predicates" `Quick test_routing_predicates;
    Alcotest.test_case "delta link: replicate and delete" `Quick
      test_toy_replication_and_delete;
    Alcotest.test_case "delta link: byte-budget batching" `Quick
      test_toy_batching;
    Alcotest.test_case "delta link: duplicate frames dropped" `Quick
      test_toy_dup_frames_dropped;
    Alcotest.test_case "delta link: gaps counted, state heals" `Quick
      test_toy_gap_is_counted_and_healed;
    Alcotest.test_case "delta link: promote drops in-flight" `Quick
      test_toy_promote_drops_in_flight;
    Alcotest.test_case "delta link: drain blocks until applied" `Quick
      test_toy_drain_blocks_until_applied;
    Alcotest.test_case "shared backend: move is a metadata flip" `Quick
      test_shared_move_is_metadata_flip;
    Alcotest.test_case "replicated: standby tracks primary" `Quick
      test_replicated_standby_tracks_primary;
    Alcotest.test_case "replicated: in-scope move is 0 bytes" `Quick
      test_replicated_move_is_zero_bytes;
    Alcotest.test_case "crash at every delta boundary" `Slow
      test_crash_at_every_delta_boundary;
    Alcotest.test_case "crash boundaries under duplication" `Slow
      test_crash_boundaries_with_duplication;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_shared_matches_local_oracle;
        prop_replicated_survives_random_crash;
      ]
