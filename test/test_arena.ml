(* Flat-memory arenas and the timing wheel (ISSUE 6).

   Three equivalence obligations, one regression:

   - the slab arena's typed accessors must roundtrip every field width
     (including negative full-width ints), zero fresh rows, and reject
     stale handles — both after a plain free and after the freed row is
     reused off the free list (the generation-stamp guarantee);
   - an arena-backed per-flow store must be observationally identical
     to a boxed reference model under random churn
     (insert/mutate/delete/match);
   - the timing-wheel scheduler must dispatch in exactly the reference
     binary heap's (time, seq) order on random schedules, including
     ties, zero delays, nested scheduling and far-future timers;
   - NAT port allocation must wrap within its configured range and
     recycle ports of Closed entries instead of marching past 65535. *)

module Arena = Opennf_util.Arena
module Pfa = Opennf_state.Store.Perflow_arena
module Engine = Opennf_sim.Engine
open Opennf_net

(* --- arena unit tests -------------------------------------------------- *)

let test_arena_roundtrip () =
  let a = Arena.create ~stride:40 () in
  let h = Arena.alloc a in
  Arena.set_u8 a h 0 0xAB;
  Arena.set_u16 a h 1 0xBEEF;
  Arena.set_u32 a h 3 0xDEADBEEF;
  Arena.set_int a h 8 (-123456789);
  Arena.set_int a h 16 max_int;
  Arena.set_int a h 24 min_int;
  Arena.set_f64 a h 32 (-3.5e-9);
  Alcotest.(check int) "u8" 0xAB (Arena.get_u8 a h 0);
  Alcotest.(check int) "u16" 0xBEEF (Arena.get_u16 a h 1);
  Alcotest.(check int) "u32" 0xDEADBEEF (Arena.get_u32 a h 3);
  Alcotest.(check int) "negative int" (-123456789) (Arena.get_int a h 8);
  Alcotest.(check int) "max_int" max_int (Arena.get_int a h 16);
  Alcotest.(check int) "min_int" min_int (Arena.get_int a h 24);
  Alcotest.(check (float 0.0)) "f64 exact" (-3.5e-9) (Arena.get_f64 a h 32)

let test_arena_zeroed_on_reuse () =
  let a = Arena.create ~stride:16 () in
  let h1 = Arena.alloc a in
  Arena.set_int a h1 0 0x1234567890;
  Arena.set_int a h1 8 (-1);
  Arena.free a h1;
  (* LIFO free list: the next alloc reuses the same row. *)
  let h2 = Arena.alloc a in
  Alcotest.(check int) "row reused" (h1 land 0xFFFFFFFF) (h2 land 0xFFFFFFFF);
  Alcotest.(check int) "field 0 zeroed" 0 (Arena.get_int a h2 0);
  Alcotest.(check int) "field 8 zeroed" 0 (Arena.get_int a h2 8)

let expect_stale f =
  Alcotest.(check bool) "stale handle rejected" true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

let test_arena_stale_after_free () =
  let a = Arena.create ~stride:16 () in
  let h = Arena.alloc a in
  Arena.free a h;
  Alcotest.(check bool) "not live" false (Arena.is_live a h);
  expect_stale (fun () -> Arena.get_int a h 0);
  expect_stale (fun () -> Arena.set_u16 a h 0 1);
  expect_stale (fun () -> Arena.free a h)

let test_arena_stale_after_reuse () =
  let a = Arena.create ~stride:16 () in
  let h1 = Arena.alloc a in
  Arena.free a h1;
  let h2 = Arena.alloc a in
  (* Same row, different generation: the old handle must not read the
     new tenant's fields. *)
  Arena.set_int a h2 0 42;
  expect_stale (fun () -> Arena.get_int a h1 0);
  Alcotest.(check int) "new handle reads" 42 (Arena.get_int a h2 0);
  Alcotest.(check int) "null is stale" 1
    (try
       ignore (Arena.get_u8 a Arena.null 0);
       0
     with Invalid_argument _ -> 1)

let test_arena_growth_and_iter () =
  let a = Arena.create ~stride:8 () in
  (* Cross two slab boundaries so growth is exercised. *)
  let n = 70_000 in
  let hs = Array.init n (fun _ -> Arena.alloc a) in
  Array.iteri (fun i h -> Arena.set_int a h 0 i) hs;
  Alcotest.(check int) "live" n (Arena.live a);
  Alcotest.(check bool) "capacity >= live" true (Arena.capacity a >= n);
  (* Free every third row; iter_live must visit the rest in ascending
     row order regardless of the free pattern. *)
  let freed = ref 0 in
  Array.iteri
    (fun i h ->
      if i mod 3 = 0 then begin
        Arena.free a h;
        incr freed
      end)
    hs;
  Alcotest.(check int) "live after frees" (n - !freed) (Arena.live a);
  let seen = ref [] in
  Arena.iter_live a (fun h -> seen := Arena.get_int a h 0 :: !seen);
  let seen = List.rev !seen in
  Alcotest.(check int) "iter count" (n - !freed) (List.length seen);
  Alcotest.(check bool) "ascending row order" true
    (List.for_all2 ( < )
       (List.filteri (fun i _ -> i < List.length seen - 1) seen)
       (List.tl seen))

(* --- arena store vs boxed reference under churn ------------------------ *)

(* Reuse test_ordered's tiny universe so churn collides often. *)
let ip a b = Ipaddr.v 10 0 (a land 3) (b land 7)

let key a b =
  Flow.make ~src:(ip a b) ~dst:(ip b a)
    ~proto:(if a land 1 = 0 then Flow.Tcp else Flow.Udp)
    ~sport:(1000 + (a land 3))
    ~dport:(1000 + (b land 3))
    ()

let filter_of c a b =
  match c mod 8 with
  | 0 -> Filter.any
  | 1 -> Filter.of_src_host (ip a b)
  | 2 -> Filter.of_dst_host (ip a b)
  | 3 -> Filter.of_src_prefix (Ipaddr.Prefix.make (ip a b) 24)
  | 4 ->
    Filter.make ~src:(Ipaddr.Prefix.host (ip a b))
      ~dst:(Ipaddr.Prefix.host (ip b a)) ()
  | 5 ->
    Filter.make ~src:(Ipaddr.Prefix.host (ip a b)) ~dst_port:(1000 + (b land 3)) ()
  | 6 -> Filter.make ~proto:(if a land 1 = 0 then Flow.Tcp else Flow.Udp) ()
  | _ -> Filter.of_key (key a b)

let ops_arb =
  QCheck.(list_of_size (Gen.int_range 1 120) (triple small_nat small_nat small_nat))

(* Payload: one int and one float field, as a stand-in for NF state. *)
let off_v = Pfa.payload_off
let off_f = Pfa.payload_off + 8

let pfa_equiv =
  QCheck.Test.make
    ~name:"perflow arena == boxed reference under churn (random)" ~count:80
    ops_arb (fun ops ->
      let store = Pfa.create ~payload:16 () in
      let a = Pfa.arena store in
      let model = ref Flow.Map.empty in
      (* Handles retired by remove: every later access must raise. *)
      let stale = ref [] in
      List.for_all
        (fun (c, x, y) ->
          let k = Flow.canonical (key x y) in
          (match c mod 6 with
          | 0 | 1 ->
            let h = Pfa.insert store k in
            Arena.set_int a h off_v x;
            Arena.set_f64 a h off_f (float_of_int y);
            model := Flow.Map.add k (x, float_of_int y) !model
          | 2 ->
            (match Pfa.find_opt store k with
            | Some h -> stale := h :: !stale
            | None -> ());
            let removed = Pfa.remove store k in
            if removed <> Flow.Map.mem k !model then
              QCheck.Test.fail_reportf "remove %s: presence disagreed"
                (Flow.to_string k);
            model := Flow.Map.remove k !model
          | 3 ->
            (* Mutate in place if present. *)
            let h = Pfa.find store k in
            if h <> Arena.null then begin
              Arena.set_int a h off_v (Arena.get_int a h off_v + 1);
              model :=
                Flow.Map.update k
                  (Option.map (fun (v, f) -> (v + 1, f)))
                  !model
            end
          | _ -> ());
          (* Point lookups agree. *)
          (match (Pfa.find_opt store k, Flow.Map.find_opt k !model) with
          | None, None -> ()
          | Some h, Some (v, f) ->
            if Arena.get_int a h off_v <> v || Arena.get_f64 a h off_f <> f then
              QCheck.Test.fail_reportf "payload mismatch at %s"
                (Flow.to_string k);
            if Pfa.key_of store h <> k then
              QCheck.Test.fail_reportf "key_of mismatch at %s" (Flow.to_string k)
          | Some _, None ->
            QCheck.Test.fail_reportf "ghost entry %s" (Flow.to_string k)
          | None, Some _ ->
            QCheck.Test.fail_reportf "lost entry %s" (Flow.to_string k));
          if Pfa.size store <> Flow.Map.cardinal !model then
            QCheck.Test.fail_reportf "size %d != model %d" (Pfa.size store)
              (Flow.Map.cardinal !model);
          (* Scoped enumeration agrees with the model, in key order. *)
          let f = filter_of c x y in
          let got = List.map fst (Pfa.matching store f) in
          let want =
            Flow.Map.fold
              (fun k _ acc -> if Filter.matches_flow f k then k :: acc else acc)
              !model []
            |> List.rev
          in
          if got <> want then
            QCheck.Test.fail_reportf "matching %s: %d entries, want %d"
              (Filter.to_string f) (List.length got) (List.length want);
          (* Retired handles stay rejected even after free-list reuse. *)
          List.for_all
            (fun h ->
              not (Arena.is_live a h)
              &&
              try
                ignore (Arena.get_int a h off_v);
                false
              with Invalid_argument _ -> true)
            !stale)
        ops)

(* --- timing wheel vs binary heap --------------------------------------- *)

(* Random schedules on a coarse grid (frequent exact ties), with zero
   delays and nested scheduling from inside thunks. Both engines must
   log the same ((time, seq-order) → id) dispatch sequence. *)
let run_schedule queue ops =
  let e = Engine.create ~queue () in
  let log = ref [] in
  let n = ref 0 in
  List.iter
    (fun (c, a, b) ->
      incr n;
      let id = !n in
      let delay = float_of_int (a land 31) /. 8.0 in
      Engine.schedule e ~delay (fun () ->
          log := (Engine.now e, id) :: !log;
          match c mod 4 with
          | 0 ->
            (* Nested: relative delay, including zero. *)
            Engine.schedule e ~delay:(float_of_int (b land 7) /. 8.0) (fun () ->
                log := (Engine.now e, -id) :: !log)
          | 1 when b land 1 = 0 ->
            (* Far-future: exercises the wheel's overflow path. *)
            Engine.schedule e ~delay:1.0e9 (fun () ->
                log := (Engine.now e, 1_000_000 + id) :: !log)
          | _ -> ()))
    ops;
  Engine.run e;
  (List.rev !log, Engine.processed e, Engine.now e)

let wheel_heap_equiv =
  QCheck.Test.make ~name:"timing wheel == binary heap dispatch order (random)"
    ~count:120 ops_arb (fun ops ->
      let heap = run_schedule `Heap ops in
      let wheel = run_schedule `Wheel ops in
      if heap <> wheel then
        let (lh, ph, _), (lw, pw, _) = (heap, wheel) in
        QCheck.Test.fail_reportf
          "diverged: heap %d dispatches, wheel %d; first heap %s wheel %s" ph pw
          (match lh with (t, i) :: _ -> Printf.sprintf "(%g,%d)" t i | [] -> "-")
          (match lw with (t, i) :: _ -> Printf.sprintf "(%g,%d)" t i | [] -> "-")
      else true)

let test_wheel_far_future () =
  let e = Engine.create ~queue:`Wheel () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0e9 (fun () -> log := "far" :: !log);
  Engine.schedule e ~delay:0.5 (fun () -> log := "near" :: !log);
  Engine.schedule e ~delay:1.0e6 (fun () -> log := "mid" :: !log);
  Engine.run e;
  Alcotest.(check (list string))
    "overflow dispatch order" [ "near"; "mid"; "far" ] (List.rev !log);
  Alcotest.(check (float 1e-3)) "clock at far event" 2.0e9 (Engine.now e)

let test_wheel_many_ties () =
  (* Thousands of events at identical times: FIFO within each instant. *)
  let e = Engine.create ~queue:`Wheel () in
  let log = ref [] in
  for i = 0 to 4_999 do
    Engine.schedule e ~delay:(float_of_int (i mod 5) /. 10.0) (fun () ->
        log := i :: !log)
  done;
  Engine.run e;
  let by_heap =
    let e = Engine.create ~queue:`Heap () in
    let log = ref [] in
    for i = 0 to 4_999 do
      Engine.schedule e ~delay:(float_of_int (i mod 5) /. 10.0) (fun () ->
          log := i :: !log)
    done;
    Engine.run e;
    List.rev !log
  in
  Alcotest.(check (list int)) "tie order matches heap" by_heap (List.rev !log)

(* --- NAT port allocation (regression) ---------------------------------- *)

let mk_packet =
  let next = ref 9000 in
  fun ?(flags = []) key ->
    incr next;
    Packet.create ~id:!next ~key ~flags ~sent_at:0.0 ()

let client_key i =
  Flow.make ~src:(Ipaddr.v 10 1 0 i) ~dst:(Ipaddr.v 192 168 0 1)
    ~proto:Flow.Tcp ~sport:(40_000 + i) ~dport:80 ()

let test_nat_port_wrap_and_recycle () =
  (* A six-port range: 65530..65535. The old allocator marched
     next_port past 65535 here. *)
  let nat = Opennf_nfs.Nat.create ~port_base:65530 ~port_limit:65535 () in
  let impl = Opennf_nfs.Nat.impl nat in
  for i = 0 to 5 do
    impl.Opennf_sb.Nf_api.process_packet (mk_packet ~flags:[ Syn ] (client_key i))
  done;
  Alcotest.(check int) "range filled" 6 (Opennf_nfs.Nat.entry_count nat);
  for i = 0 to 5 do
    match Opennf_nfs.Nat.translation_of nat (client_key i) with
    | Some p ->
      Alcotest.(check bool)
        (Printf.sprintf "port %d in range" p)
        true
        (p >= 65530 && p <= 65535)
    | None -> Alcotest.fail "missing translation"
  done;
  (* Exhausted: a seventh flow gets no entry and is counted. *)
  impl.Opennf_sb.Nf_api.process_packet (mk_packet ~flags:[ Syn ] (client_key 6));
  Alcotest.(check int) "no entry on exhaustion" 6 (Opennf_nfs.Nat.entry_count nat);
  Alcotest.(check int) "exhaustion counted" 1 (Opennf_nfs.Nat.exhausted_count nat);
  Alcotest.(check (option int))
    "seventh flow untranslated" None
    (Opennf_nfs.Nat.translation_of nat (client_key 6));
  (* Close flow 2; its port must be recycled for the next new flow. *)
  let freed_port =
    match Opennf_nfs.Nat.translation_of nat (client_key 2) with
    | Some p -> p
    | None -> Alcotest.fail "flow 2 lost"
  in
  impl.Opennf_sb.Nf_api.process_packet (mk_packet ~flags:[ Rst ] (client_key 2));
  Alcotest.(check bool) "flow 2 closed" true
    (Opennf_nfs.Nat.state_of nat (client_key 2) = Some Opennf_nfs.Nat.Closed);
  impl.Opennf_sb.Nf_api.process_packet (mk_packet ~flags:[ Syn ] (client_key 7));
  Alcotest.(check (option int))
    "closed port recycled" (Some freed_port)
    (Opennf_nfs.Nat.translation_of nat (client_key 7));
  Alcotest.(check bool) "closed entry evicted" true
    (Opennf_nfs.Nat.state_of nat (client_key 2) = None);
  Alcotest.(check int) "entry count steady" 6 (Opennf_nfs.Nat.entry_count nat)

let test_nat_port_wraps_cursor () =
  (* Allocation order itself wraps: after filling and recycling, the
     cursor walks the range circularly instead of growing unboundedly. *)
  let nat = Opennf_nfs.Nat.create ~port_base:50_000 ~port_limit:50_001 () in
  let impl = Opennf_nfs.Nat.impl nat in
  for round = 0 to 9 do
    let k = client_key (round land 63) in
    impl.Opennf_sb.Nf_api.process_packet (mk_packet ~flags:[ Syn ] k);
    (match Opennf_nfs.Nat.translation_of nat k with
    | Some p ->
      Alcotest.(check bool) "wrapped port" true (p = 50_000 || p = 50_001)
    | None -> Alcotest.fail "allocation failed with recyclable ports");
    (* Close it so the next round can recycle. *)
    impl.Opennf_sb.Nf_api.process_packet (mk_packet ~flags:[ Rst ] k)
  done

let suite =
  [
    Alcotest.test_case "arena: field roundtrip" `Quick test_arena_roundtrip;
    Alcotest.test_case "arena: rows zeroed on reuse" `Quick
      test_arena_zeroed_on_reuse;
    Alcotest.test_case "arena: stale after free" `Quick
      test_arena_stale_after_free;
    Alcotest.test_case "arena: stale after reuse" `Quick
      test_arena_stale_after_reuse;
    Alcotest.test_case "arena: growth and ordered iteration" `Quick
      test_arena_growth_and_iter;
    QCheck_alcotest.to_alcotest pfa_equiv;
    QCheck_alcotest.to_alcotest wheel_heap_equiv;
    Alcotest.test_case "wheel: far-future overflow" `Quick
      test_wheel_far_future;
    Alcotest.test_case "wheel: 5k ties keep FIFO" `Quick test_wheel_many_ties;
    Alcotest.test_case "nat: port wrap + Closed recycle" `Quick
      test_nat_port_wrap_and_recycle;
    Alcotest.test_case "nat: cursor wraps the range" `Quick
      test_nat_port_wraps_cursor;
  ]
