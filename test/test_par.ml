(* Wall-clock parallel shard execution (ISSUE 9): each shard on its own
   engine, coupled by the deterministic channels of {!Opennf_sim.Par}.
   The contract under test: a parallel run produces the same semantic
   outcomes, the same audit digests and the same canonical virtual-time
   trace content as the serial single-engine run of the same scenario —
   for any worker count — and repeated parallel runs are bit-identical
   to each other. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Par = Opennf_sim.Par
module Faults = Opennf_sim.Faults
module Hashing = Opennf_util.Hashing
module Costs = Opennf_sb.Costs
module Dummy = Opennf_nfs.Dummy
module Export = Opennf_obs.Export
module Hub = Opennf_obs.Hub
module H = Helpers
open Opennf_net
open Opennf

let subnet i = Ipaddr.Prefix.make (Ipaddr.v 10 (80 + i) 0 0) 16
let servers = Ipaddr.Prefix.make (Ipaddr.v 172 31 0 0) 16
let two_sided i = Filter.make ~src:(subnet i) ~dst:servers ()

let key_in_subnet i k =
  Flow.make
    ~src:(Ipaddr.of_int (Ipaddr.to_int (Ipaddr.v 10 (80 + i) 0 0) + k + 1))
    ~dst:(Ipaddr.v 172 31 0 1) ~proto:Flow.Tcp ~sport:(30000 + k) ~dport:443 ()

(* --- the workload ----------------------------------------------------------

   [n] src/dst dummy pairs. [cross = false] homes each pair entirely on
   shard [i mod shards] (every move intra-shard, the embarrassingly
   parallel case); [cross = true] homes sources on [i mod shards] and
   destinations on [(i + 1) mod shards], so every move exercises the
   cross-shard admission handshake and cross-engine southbound calls. *)

type pair = { src : Controller.nf; dst : Controller.nf; d1 : Dummy.t; d2 : Dummy.t }

let bed ?(seed = 5) ?obs ?shard_obs ?par ?resilience ~cross ~shards ~n ~flows
    () =
  let fab = Fabric.create ~seed ?obs ?shard_obs ?par ?resilience ~shards () in
  let pairs =
    List.init n (fun i ->
        let d1 = Dummy.create () in
        let d2 = Dummy.create () in
        Dummy.seed_flows d1 (List.init flows (key_in_subnet i));
        let s_home = i mod shards in
        let d_home = if cross then (i + 1) mod shards else s_home in
        let src, _ =
          Fabric.add_nf fab ~shard:s_home ~name:(Printf.sprintf "src%d" i)
            ~impl:(Dummy.impl d1) ~costs:Costs.dummy
        in
        let dst, _ =
          Fabric.add_nf fab ~shard:d_home ~name:(Printf.sprintf "dst%d" i)
            ~impl:(Dummy.impl d2) ~costs:Costs.dummy
        in
        { src; dst; d1; d2 })
  in
  Proc.spawn fab.engine (fun () ->
      List.iteri
        (fun i p -> Controller.set_route fab.ctrl (two_sided i) p.src)
        pairs);
  (fab, pairs)

let spec_for ~filter p =
  Move.spec ~src:p.src ~dst:p.dst ~filter ~guarantee:Move.Loss_free
    ~parallel:true ()

let run_moves ?workers fab specs =
  let results = ref [] in
  Engine.schedule_at fab.Fabric.engine 0.1 (fun () ->
      Proc.spawn fab.Fabric.engine (fun () ->
          let ivars = List.map (Move.submit_sharded fab.Fabric.group) specs in
          results := List.map Proc.Ivar.read ivars));
  Fabric.run ?workers fab;
  !results

(* Audit digest over the merged ledger: per-flow processed sequences
   folded in deterministic key order. *)
let audit_digest fab keys =
  let audit = Fabric.merged_audit fab in
  List.fold_left
    (fun acc key ->
      List.fold_left
        (fun acc id -> Hashing.combine acc (Int64.of_int id))
        (Hashing.combine acc 1L)
        (Audit.processed_order ~filter:(Filter.of_key key) audit))
    (Hashing.fnv1a64 "flows") keys

(* Everything observable about a run, comparable serial-vs-parallel:
   move reports, dummy store counts, the audit digest. *)
let outcome ?workers ?seed ?shard_obs ?par ~cross ~shards ~n ~flows () =
  let fab, pairs = bed ?seed ?shard_obs ?par ~cross ~shards ~n ~flows () in
  let specs = List.mapi (fun i p -> spec_for ~filter:(two_sided i) p) pairs in
  let results = run_moves ?workers fab specs in
  let semantic =
    List.map2
      (fun r p ->
        let r = Op_error.ok_exn r in
        ( r.Move.rp_src, r.Move.rp_dst, r.Move.per_chunks, r.Move.multi_chunks,
          r.Move.state_bytes, Dummy.flow_count p.d1, Dummy.imported_count p.d2
        ))
      results pairs
  in
  let keys =
    List.concat (List.init n (fun i -> List.init flows (key_in_subnet i)))
  in
  (semantic, audit_digest fab keys, fab)

(* --- parallel == serial ---------------------------------------------------- *)

let check_equiv ?workers ~cross ~shards ~n ~flows () =
  let serial, s_digest, _ = outcome ~cross ~shards ~n ~flows () in
  let par, p_digest, fab = outcome ?workers ~par:true ~cross ~shards ~n ~flows () in
  Alcotest.(check bool) "fabric really ran parallel" true (Fabric.parallel fab);
  Alcotest.(check bool) "semantic outcomes identical" true (serial = par);
  Alcotest.(check bool) "audit digests identical" true (s_digest = p_digest)

let test_par_disjoint_equals_serial () =
  check_equiv ~workers:1 ~cross:false ~shards:2 ~n:4 ~flows:8 ();
  check_equiv ~cross:false ~shards:4 ~n:4 ~flows:8 ()

let test_par_cross_shard_equals_serial () =
  check_equiv ~cross:true ~shards:2 ~n:4 ~flows:8 ();
  check_equiv ~cross:true ~shards:4 ~n:4 ~flows:8 ()

(* Worker count must never change results — 1 worker serializes the
   whole protocol (what single-core CI exercises), max uses every
   usable domain. *)
let test_par_workers_dont_matter () =
  let one, d1, _ =
    outcome ~workers:1 ~par:true ~cross:true ~shards:4 ~n:4 ~flows:6 ()
  in
  let many, d2, fab =
    outcome ~par:true ~cross:true ~shards:4 ~n:4 ~flows:6 ()
  in
  Alcotest.(check bool) "semantics independent of workers" true (one = many);
  Alcotest.(check bool) "digest independent of workers" true (d1 = d2);
  Alcotest.(check bool) "coordinator ran rounds" true
    (match fab.Fabric.par with Some p -> Par.rounds p > 0 | None -> false)

(* --- repeat-run determinism ------------------------------------------------ *)

(* Same seed, two parallel runs: identical digests and byte-identical
   canonical trace content (per-shard hubs, merged by Export.canonical). *)
let test_par_repeat_determinism () =
  let traced () =
    let hubs = Array.init 4 (fun _ -> Hub.create ~trace:true ()) in
    let semantic, digest, _ =
      outcome ~par:true ~shard_obs:(fun k -> hubs.(k)) ~cross:true ~shards:4
        ~n:4 ~flows:6 ()
    in
    let canon =
      Export.canonical (Array.to_list (Array.map Hub.trace hubs))
    in
    (semantic, digest, canon)
  in
  let s1, d1, c1 = traced () in
  let s2, d2, c2 = traced () in
  Alcotest.(check bool) "semantics repeat" true (s1 = s2);
  Alcotest.(check bool) "digests repeat" true (d1 = d2);
  Alcotest.(check bool) "canonical traces byte-identical" true (c1 = c2);
  Alcotest.(check bool) "traces non-empty" true (String.length c1 > 0)

(* Parallel trace content == serial trace content, canonicalized. The
   serial fabric buffers one trace; the parallel one buffers per shard;
   both canonicalize to the same string when virtual-time behavior
   matches. *)
let test_par_trace_equals_serial () =
  let canon_serial =
    let obs = Hub.create ~trace:true () in
    let fab, pairs = bed ~obs ~cross:true ~shards:2 ~n:2 ~flows:4 () in
    let specs = List.mapi (fun i p -> spec_for ~filter:(two_sided i) p) pairs in
    ignore (run_moves fab specs);
    Export.canonical [ Hub.trace obs ]
  and canon_par =
    let hubs = Array.init 2 (fun _ -> Hub.create ~trace:true ()) in
    let fab, pairs =
      bed
        ~shard_obs:(fun k -> hubs.(k))
        ~par:true ~cross:true ~shards:2 ~n:2 ~flows:4 ()
    in
    let specs = List.mapi (fun i p -> spec_for ~filter:(two_sided i) p) pairs in
    ignore (run_moves fab specs);
    Export.canonical (Array.to_list (Array.map Hub.trace hubs))
  in
  Alcotest.(check string) "canonical trace content matches serial" canon_serial
    canon_par

(* --- deterministic crash faults -------------------------------------------- *)

(* A crash planted at a fixed virtual time on the victim's home shard:
   the doomed move fails typed, the healthy pair's move is untouched,
   and serial and parallel agree on both. *)
let resilience =
  {
    Controller.call_timeout = 0.05;
    max_retries = 3;
    backoff = 0.01;
    liveness_misses = 4;
    probe_period = 0.1;
  }

let crash_outcome ?par () =
  let shards = 2 in
  let fab, pairs =
    bed ?par ~resilience ~cross:false ~shards ~n:2 ~flows:6 ()
  in
  (* src1 homes on shard 1; plant the crash on its home faults handle,
     timed to land mid-transfer. *)
  Faults.crash_at fab.Fabric.shard_faults.(1 mod shards) ~node:"src1" 0.101;
  let specs = List.mapi (fun i p -> spec_for ~filter:(two_sided i) p) pairs in
  let results = run_moves fab specs in
  List.map
    (function
      | Ok r -> `Ok (r.Move.per_chunks, r.Move.state_bytes)
      | Error (Op_error.Nf_crashed { nf }) -> `Crashed nf
      | Error e -> `Other (Op_error.to_string e))
    results

let test_par_crash_equals_serial () =
  let serial = crash_outcome () in
  let par = crash_outcome ~par:true () in
  Alcotest.(check bool) "crash outcomes identical" true (serial = par);
  match par with
  | [ `Ok _; `Crashed "src1" ] -> ()
  | _ -> Alcotest.fail "expected healthy move + typed crash"

(* --- shares across shards -------------------------------------------------- *)

let share_outcome ?par () =
  let shards = 2 in
  let fab, pairs = bed ?par ~cross:true ~shards ~n:2 ~flows:4 () in
  let p0 = List.hd pairs in
  let synced = ref (-1) in
  Engine.schedule_at fab.Fabric.engine 0.1 (fun () ->
      Proc.spawn fab.Fabric.engine (fun () ->
          match
            Share.start fab.Fabric.ctrl ~shard_group:fab.Fabric.group
              ~instances:[ p0.src; p0.dst ] ~filter:(two_sided 0)
              ~consistency:Share.Strong ()
          with
          | Error e -> Alcotest.fail (Op_error.to_string e)
          | Ok share ->
            Share.stop share;
            synced := (Share.stats share).Share.updates_synced));
  Fabric.run fab;
  (!synced, Dummy.flow_count p0.d1, Dummy.flow_count p0.d2)

let test_par_share_equals_serial () =
  let serial = share_outcome () in
  let par = share_outcome ~par:true () in
  Alcotest.(check bool) "share outcomes identical" true (serial = par)

(* --- random workloads ------------------------------------------------------ *)

let prop_par_equals_serial =
  QCheck.Test.make ~name:"parallel == serial (random workloads)" ~count:6
    QCheck.(
      quad (int_range 1 4) (int_range 1 8) (int_range 1 1000) bool)
    (fun (n, flows, seed, cross) ->
      let run shards par =
        let semantic, digest, _ =
          outcome ~seed ?par:(if par then Some true else None) ~cross ~shards
            ~n ~flows ()
        in
        (semantic, digest)
      in
      run 2 true = run 2 false && run 4 true = run 4 false)

let suite =
  [
    Alcotest.test_case "parallel disjoint == serial" `Quick
      test_par_disjoint_equals_serial;
    Alcotest.test_case "parallel cross-shard == serial" `Quick
      test_par_cross_shard_equals_serial;
    Alcotest.test_case "worker count never changes results" `Quick
      test_par_workers_dont_matter;
    Alcotest.test_case "repeat runs bit-identical" `Quick
      test_par_repeat_determinism;
    Alcotest.test_case "canonical trace == serial" `Quick
      test_par_trace_equals_serial;
    Alcotest.test_case "deterministic crash == serial" `Quick
      test_par_crash_equals_serial;
    Alcotest.test_case "cross-shard share == serial" `Quick
      test_par_share_equals_serial;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_par_equals_serial ]
