(* Randomized equivalence of the indexed data path against retained
   linear-scan references (ISSUE 1): under install/remove/query churn,
   [Flowtable.lookup] (exact hash + priority buckets + decision cache)
   must always agree with [Flowtable.lookup_reference], and
   [Store.Perflow.matching] (exact fast path + per-host index) with
   [Store.Perflow.matching_reference]. *)

module Rng = Opennf_util.Rng
open Opennf_net
open Opennf_state

(* A deliberately small universe so installs, removes and queries
   collide often. *)
let host rng = Ipaddr.v 10 0 (Rng.int rng 4) (Rng.int rng 8)
let port rng = 1000 + Rng.int rng 4
let protos = [| Flow.Tcp; Flow.Udp |]

let key rng =
  Flow.make ~src:(host rng) ~dst:(host rng)
    ~proto:(Rng.pick rng protos) ~sport:(port rng) ~dport:(port rng) ()

let packet rng ~id =
  let flags = if Rng.int rng 4 = 0 then [ Packet.Syn ] else [] in
  Packet.create ~id ~key:(key rng) ~flags ~sent_at:0.0 ()

let cookie_of = Option.map (fun r -> r.Flowtable.cookie)

let check_lookup table p =
  Alcotest.(check (option int))
    "indexed lookup agrees with linear reference"
    (cookie_of (Flowtable.lookup_reference table p))
    (cookie_of (Flowtable.lookup table p))

let random_filter rng =
  match Rng.int rng 8 with
  | 0 -> Filter.any
  | 1 -> Filter.of_src_host (host rng)
  | 2 -> Filter.of_dst_host (host rng)
  | 3 -> Filter.of_src_prefix (Ipaddr.Prefix.make (host rng) 24)
  | 4 -> Filter.of_src_prefix (Ipaddr.Prefix.make (host rng) 16)
  | 5 -> Filter.make ~src:(Ipaddr.Prefix.host (host rng)) ~dst_port:(port rng) ()
  | 6 -> Filter.make ~proto:(Rng.pick rng protos) ()  (* no address: fallback *)
  | _ -> Filter.of_key (key rng)

let test_flowtable_churn () =
  let rng = Rng.create ~seed:42 in
  let table = Flowtable.create () in
  for i = 1 to 4000 do
    (match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
      (* Exact-match rule on a full 5-tuple (the common shape). *)
      let f = Filter.of_key (key rng) in
      Flowtable.install table ~cookie:(Rng.int rng 150)
        ~priority:(100 + (50 * Rng.int rng 4))
        ~filters:[ f; Filter.mirror f ]
        ~actions:[ Flowtable.Forward "nf" ]
    | 4 ->
      (* Wildcard rule: prefix or catch-all. *)
      let f =
        if Rng.bool rng then
          Filter.of_src_prefix (Ipaddr.Prefix.make (host rng) (8 * Rng.int rng 4))
        else Filter.any
      in
      Flowtable.install table ~cookie:(Rng.int rng 150)
        ~priority:(100 + (50 * Rng.int rng 4))
        ~filters:[ f ]
        ~actions:[ Flowtable.Forward "wild" ]
    | 5 ->
      (* Flag-constrained rule: disables the decision cache while any
         such rule is installed. *)
      let f = Filter.make ~src:(Ipaddr.Prefix.host (host rng)) ~tcp_flag:Syn () in
      Flowtable.install table ~cookie:(Rng.int rng 150)
        ~priority:(100 + (50 * Rng.int rng 4))
        ~filters:[ f ]
        ~actions:[ Flowtable.To_controller ]
    | 6 -> Flowtable.remove table ~cookie:(Rng.int rng 150)
    | _ ->
      let p = packet rng ~id:i in
      check_lookup table p;
      (* Immediate repeat: hits the decision cache when it is active. *)
      check_lookup table p);
    ()
  done;
  let hits, misses = Flowtable.cache_stats table in
  Alcotest.(check bool) "decision cache served hits" true (hits > 0);
  Alcotest.(check bool) "decision cache saw misses" true (misses > 0)

let test_flowtable_cache_invalidation () =
  let rng = Rng.create ~seed:7 in
  let table = Flowtable.create () in
  let k = key rng in
  let p = Packet.create ~id:1 ~key:k ~sent_at:0.0 () in
  let f = Filter.of_key k in
  Flowtable.install table ~cookie:1 ~priority:100
    ~filters:[ f; Filter.mirror f ]
    ~actions:[ Flowtable.Forward "a" ];
  check_lookup table p;
  check_lookup table p;
  (* A higher-priority install must supersede the memoized decision. *)
  Flowtable.install table ~cookie:2 ~priority:200
    ~filters:[ f; Filter.mirror f ]
    ~actions:[ Flowtable.Forward "b" ];
  Alcotest.(check (option int)) "new rule wins after invalidation" (Some 2)
    (cookie_of (Flowtable.lookup table p));
  Flowtable.remove table ~cookie:2;
  Alcotest.(check (option int)) "removal restores old rule" (Some 1)
    (cookie_of (Flowtable.lookup table p));
  Flowtable.remove table ~cookie:1;
  Alcotest.(check (option int)) "empty table misses" None
    (cookie_of (Flowtable.lookup table p))

let pairs = Alcotest.(list (pair (testable Flow.pp Flow.equal) int))

let test_perflow_churn () =
  let rng = Rng.create ~seed:1337 in
  let store = Store.Perflow.create () in
  for i = 1 to 4000 do
    match Rng.int rng 5 with
    | 0 | 1 -> Store.Perflow.set store (key rng) i
    | 2 -> Store.Perflow.remove store (key rng)
    | _ ->
      let f = random_filter rng in
      Alcotest.check pairs
        ("indexed matching agrees with reference for " ^ Filter.to_string f)
        (Store.Perflow.matching_reference store f)
        (Store.Perflow.matching store f)
  done

let suite =
  [
    Alcotest.test_case "flowtable: randomized churn equivalence" `Quick
      test_flowtable_churn;
    Alcotest.test_case "flowtable: cache invalidation on install/remove" `Quick
      test_flowtable_cache_invalidation;
    Alcotest.test_case "perflow store: randomized churn equivalence" `Quick
      test_perflow_churn;
  ]
