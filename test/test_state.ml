(* Tests for the state layer: scopes, chunks, stores. *)

open Opennf_net
open Opennf_state

let ip = Ipaddr.v
let key = Flow.make ~src:(ip 10 0 0 1) ~dst:(ip 172 16 0 1) ~sport:1234 ~dport:80 ()

let test_scope_strings () =
  Alcotest.(check string) "per" "per-flow" (Scope.to_string Scope.Per);
  Alcotest.(check string) "multi" "multi-flow" (Scope.to_string Scope.Multi);
  Alcotest.(check string) "all" "all-flows" (Scope.to_string Scope.All);
  Alcotest.(check int) "three scopes" 3 (List.length Scope.all)

let test_chunk_encode_read () =
  let chunk =
    Chunk.encode ~kind:"test" (fun w ->
        Opennf_util.Bytes_io.Writer.int w 77;
        Opennf_util.Bytes_io.Writer.string w "payload")
  in
  Alcotest.(check string) "kind" "test" chunk.Chunk.kind;
  let r = Chunk.reader chunk in
  Alcotest.(check int) "int field" 77 (Opennf_util.Bytes_io.Reader.int r);
  Alcotest.(check string) "string field" "payload"
    (Opennf_util.Bytes_io.Reader.string r);
  Alcotest.(check bool) "size counts kind" true (Chunk.size chunk > 15)

let test_chunk_compress_roundtrip () =
  let chunk = Chunk.v ~kind:"k" (String.concat "" (List.init 30 (fun _ -> "abcdef"))) in
  let c = Chunk.compress chunk in
  Alcotest.(check string) "kind tagged" "k+lz" c.Chunk.kind;
  let d = Chunk.decompress c in
  Alcotest.(check string) "kind restored" "k" d.Chunk.kind;
  Alcotest.(check string) "data restored" chunk.Chunk.data d.Chunk.data;
  (* Decompress is idempotent on plain chunks. *)
  Alcotest.(check string) "plain untouched" chunk.Chunk.data
    (Chunk.decompress chunk).Chunk.data

let test_perflow_store_canonicalizes () =
  let s = Store.Perflow.create () in
  Store.Perflow.set s key "v";
  Alcotest.(check (option string)) "forward" (Some "v") (Store.Perflow.find s key);
  Alcotest.(check (option string)) "reverse" (Some "v")
    (Store.Perflow.find s (Flow.reverse key));
  Store.Perflow.remove s (Flow.reverse key);
  Alcotest.(check int) "removed via reverse" 0 (Store.Perflow.size s)

let test_perflow_store_matching () =
  let s = Store.Perflow.create () in
  let k2 = Flow.make ~src:(ip 10 0 0 2) ~dst:(ip 172 16 0 1) ~sport:5 ~dport:80 () in
  Store.Perflow.set s key 1;
  Store.Perflow.set s k2 2;
  let hits = Store.Perflow.matching s (Filter.of_src_host (ip 10 0 0 1)) in
  Alcotest.(check int) "one match" 1 (List.length hits);
  let all = Store.Perflow.matching s Filter.any in
  Alcotest.(check int) "wildcard" 2 (List.length all)

let test_perflow_store_matching_deterministic () =
  let s = Store.Perflow.create () in
  for i = 1 to 20 do
    Store.Perflow.set s
      (Flow.make ~src:(Ipaddr.of_int i) ~dst:(ip 172 16 0 1) ~sport:i ~dport:80 ())
      i
  done;
  let keys1 = List.map fst (Store.Perflow.matching s Filter.any) in
  let keys2 = List.map fst (Store.Perflow.matching s Filter.any) in
  Alcotest.(check bool) "stable order" true (keys1 = keys2);
  Alcotest.(check bool) "sorted" true
    (keys1 = List.sort Flow.compare keys1)

let test_per_host_store () =
  let s = Store.Per_host.create () in
  Store.Per_host.update s (ip 10 0 0 1) ~default:(fun () -> 0) ~f:(fun v -> v + 1);
  Store.Per_host.update s (ip 10 0 0 1) ~default:(fun () -> 0) ~f:(fun v -> v + 1);
  Alcotest.(check (option int)) "updated" (Some 2)
    (Store.Per_host.find s (ip 10 0 0 1));
  Store.Per_host.set s (ip 10 0 0 2) 7;
  let hits =
    Store.Per_host.matching s
      (Filter.of_src_prefix (Ipaddr.Prefix.of_string "10.0.0.0/31"))
  in
  Alcotest.(check int) "prefix selects one" 1 (List.length hits)

let test_keyed_store () =
  let s =
    Store.Keyed.create
      ~relevant:(fun (f : Filter.t) _k v ->
        match f.Filter.app with Some a -> a = v | None -> true)
      ()
  in
  Store.Keyed.set s 1 "alpha";
  Store.Keyed.set s 2 "beta";
  Alcotest.(check int) "size" 2 (Store.Keyed.size s);
  Alcotest.(check int) "app select" 1
    (List.length (Store.Keyed.matching s (Filter.of_app "beta")));
  Alcotest.(check int) "wildcard" 2
    (List.length (Store.Keyed.matching s Filter.any));
  Store.Keyed.remove s 1;
  Alcotest.(check (option string)) "removed" None (Store.Keyed.find s 1)

let suite =
  [
    Alcotest.test_case "scope: names" `Quick test_scope_strings;
    Alcotest.test_case "chunk: encode/read" `Quick test_chunk_encode_read;
    Alcotest.test_case "chunk: compress roundtrip" `Quick
      test_chunk_compress_roundtrip;
    Alcotest.test_case "perflow store: canonical keys" `Quick
      test_perflow_store_canonicalizes;
    Alcotest.test_case "perflow store: filter matching" `Quick
      test_perflow_store_matching;
    Alcotest.test_case "perflow store: deterministic order" `Quick
      test_perflow_store_matching_deterministic;
    Alcotest.test_case "per-host store" `Quick test_per_host_store;
    Alcotest.test_case "keyed store" `Quick test_keyed_store;
  ]
