(* Runtime guarantee monitor (ISSUE 10): the streaming §5.1 checker.

   Fault-free runs — serial, sharded, parallel — must be clean; the
   seeded broken-controller knobs ({!Move.break_for_test}) must each
   produce the expected finding with exact op/phase/flow context; and
   the merged verdict and canonical trace export must be invariant
   under permutation of the per-shard trace buffers. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
module Dummy = Opennf_nfs.Dummy
module Monitor = Opennf_obs.Monitor
module Export = Opennf_obs.Export
module Hub = Opennf_obs.Hub
module Trace = Opennf_obs.Trace
module H = Helpers
open Opennf_net
open Opennf

let traced_bed ?packet_out_rate ?shards () =
  let obs = Hub.create ~trace:true () in
  (obs, H.prads_pair ?packet_out_rate ?shards ~obs ~monitor:true ())

let lf_spec ?break_for_test tb =
  Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
    ~guarantee:Move.Loss_free ?break_for_test ()

let op_spec ?break_for_test tb =
  Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
    ~guarantee:Move.Order_preserving ?break_for_test ()

let run_move tb spec =
  H.run_with tb ~at:0.5 (fun () ->
      match Move.run tb.H.fab.Fabric.ctrl spec with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "move failed: %a" Op_error.pp e)

(* --- fault-free runs are clean --------------------------------------------- *)

let test_clean_serial () =
  let _obs, tb = traced_bed () in
  run_move tb (lf_spec tb);
  Alcotest.(check (list reject)) "no online findings" []
    (Fabric.live_findings tb.H.fab);
  let v = Fabric.verdict tb.H.fab in
  Alcotest.(check bool) (Monitor.render v) true (Monitor.clean v)

let test_clean_sharded () =
  let tb = H.prads_pair ~shards:2 ~monitor:true () in
  H.run_with tb ~at:0.5 (fun () ->
      match
        Proc.Ivar.read
          (Move.submit_sharded tb.H.fab.Fabric.group (op_spec tb))
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "move failed: %a" Op_error.pp e);
  Alcotest.(check (list reject)) "no online findings" []
    (Fabric.live_findings tb.H.fab);
  let v = Fabric.verdict tb.H.fab in
  Alcotest.(check bool) (Monitor.render v) true (Monitor.clean v)

(* --- seeded violations ------------------------------------------------------ *)

(* The broken flush: a loss-free move that silently discards the first
   buffered packet. The monitor must report exactly one loss, pinned to
   the move and the flow that lost its packet. *)
let broken_flush_verdict () =
  let _obs, tb = traced_bed () in
  run_move tb (lf_spec ~break_for_test:Move.Drop_buffered tb);
  Fabric.verdict tb.H.fab

let test_seeded_loss () =
  let v = broken_flush_verdict () in
  Alcotest.(check int) "exactly one finding" 1 (List.length v);
  let f = List.hd v in
  Alcotest.(check string) "property" "loss"
    (Monitor.property_name f.Monitor.property);
  Alcotest.(check string) "attributed to the move" "move" f.Monitor.op;
  Alcotest.(check bool) "op span linked" true (f.Monitor.op_span <> 0);
  (* The victim is the first packet the move buffered: it was relayed
     (and last seen) the moment the source's events were armed, before
     the transfer's first phase mark — so its phase context is exactly
     the empty pre-capture window. *)
  Alcotest.(check string) "phase: before the first phase mark" ""
    f.Monitor.phase;
  Alcotest.(check string) "flow key" "172.16.0.1:80->10.1.0.3:10002/tcp"
    f.Monitor.flow;
  Alcotest.(check bool) "history non-empty" true (f.Monitor.history <> [])

let test_seeded_loss_deterministic () =
  let r1 = Monitor.render (broken_flush_verdict ()) in
  let r2 = Monitor.render (broken_flush_verdict ()) in
  Alcotest.(check string) "byte-identical report across runs" r1 r2

(* The broken handoff: an order-preserving move that releases the
   destination's buffer without waiting for the last source-bound
   packet — the §5.1.2 race. Detected online (order violations are
   decidable mid-stream), so it must surface through the live monitors,
   not just the end-of-run verdict. *)
let test_seeded_reorder () =
  let _obs, tb = traced_bed ~packet_out_rate:400.0 () in
  run_move tb (op_spec ~break_for_test:Move.Skip_order_wait tb);
  let live = Fabric.live_findings tb.H.fab in
  Alcotest.(check bool) "online finding streamed" true (live <> []);
  let v = Fabric.verdict tb.H.fab in
  let orders =
    List.filter (fun f -> f.Monitor.property = Monitor.Order) v
  in
  Alcotest.(check bool)
    (Printf.sprintf "order violation found:\n%s" (Monitor.render v))
    true (orders <> []);
  List.iter
    (fun f ->
      Alcotest.(check string) "attributed to the move" "move" f.Monitor.op)
    orders;
  (* The same scenario without the broken knob is clean — the finding
     is the knob's doing, not the scenario's. *)
  let _obs, tb' = traced_bed ~packet_out_rate:400.0 () in
  run_move tb' (op_spec tb');
  let v' = Fabric.verdict tb'.H.fab in
  Alcotest.(check bool) (Monitor.render v') true (Monitor.clean v')

(* --- tap discipline ----------------------------------------------------------- *)

let test_disabled_tap () =
  (* A tap registered on a disabled tracer must never fire (the hot
     path stays the bail-on-[on] one). *)
  let tr = Hub.trace Hub.disabled in
  let fired = ref false in
  Trace.on_event tr (fun _ -> fired := true);
  let span = Trace.span_open tr ~cat:"op" ~name:"x" () in
  Trace.instant tr ~cat:"audit" ~name:"y" ();
  Trace.span_close tr span ();
  Alcotest.(check bool) "tap never fired" false !fired

(* --- permutation invariance (QCheck) ---------------------------------------- *)

(* Random parallel workloads on 2 or 4 shards: the merged verdict and
   the canonical trace export are pure functions of the set of
   shard-tagged buffers, whatever order the shards are listed in. *)

type pconfig = { seed : int; shards : int; ops : int; flows : int; rot : int }

let pconfig_gen =
  QCheck.Gen.(
    map
      (fun (seed, two, ops, flows, rot) ->
        {
          seed = 1 + seed;
          shards = (if two then 2 else 4);
          ops = 1 + ops;
          flows = 2 + flows;
          rot = rot;
        })
      (tup5 (int_bound 10_000) bool (int_bound 4) (int_bound 30)
         (int_bound 3)))

let pconfig_print c =
  Printf.sprintf "{seed=%d shards=%d ops=%d flows=%d rot=%d}" c.seed c.shards
    c.ops c.flows c.rot

let pconfig_arb = QCheck.make ~print:pconfig_print pconfig_gen

let subnet i = Ipaddr.Prefix.make (Ipaddr.v 10 (120 + i) 0 0) 16
let servers = Ipaddr.Prefix.make (Ipaddr.v 172 31 0 0) 16
let pair_filter i = Filter.make ~src:(subnet i) ~dst:servers ()

let pair_key i k =
  Flow.make
    ~src:(Ipaddr.of_int (Ipaddr.to_int (Ipaddr.v 10 (120 + i) 0 0) + k + 1))
    ~dst:(Ipaddr.v 172 31 0 1) ~proto:Flow.Tcp ~sport:(40000 + k) ~dport:443 ()

(* Run the random workload on a parallel fabric and return the
   shard-tagged audit traces. *)
let par_traces c =
  let fab = Fabric.create ~seed:c.seed ~shards:c.shards ~par:true () in
  let pairs =
    List.init c.ops (fun i ->
        let d1 = Dummy.create () in
        let d2 = Dummy.create () in
        Dummy.seed_flows d1 (List.init c.flows (pair_key i));
        let home = i mod c.shards in
        let src, _ =
          Fabric.add_nf fab ~shard:home ~name:(Printf.sprintf "src%d" i)
            ~impl:(Dummy.impl d1) ~costs:Costs.dummy
        in
        let dst, _ =
          Fabric.add_nf fab
            ~shard:((i + 1) mod c.shards)
            ~name:(Printf.sprintf "dst%d" i)
            ~impl:(Dummy.impl d2) ~costs:Costs.dummy
        in
        (i, src, dst))
  in
  Proc.spawn fab.Fabric.engine (fun () ->
      List.iter
        (fun (i, src, _) -> Controller.set_route fab.Fabric.ctrl (pair_filter i) src)
        pairs);
  Engine.schedule_at fab.Fabric.engine 0.1 (fun () ->
      Proc.spawn fab.Fabric.engine (fun () ->
          List.map
            (fun (i, src, dst) ->
              Move.submit_sharded fab.Fabric.group
                (Move.spec ~src ~dst ~filter:(pair_filter i)
                   ~guarantee:Move.Loss_free ~parallel:true ()))
            pairs
          |> List.iter (fun iv -> ignore (Proc.Ivar.read iv))));
  Fabric.run fab;
  List.mapi (fun k a -> (k, Audit.trace a)) (Array.to_list fab.Fabric.audits)

let rotate n l =
  let len = List.length l in
  let n = ((n mod len) + len) mod len in
  let rec go n l acc =
    if n = 0 then l @ List.rev acc
    else match l with [] -> List.rev acc | x :: tl -> go (n - 1) tl (x :: acc)
  in
  go n l []

let prop_permutation_invariance =
  QCheck.Test.make
    ~name:"merged verdict + canonical export invariant under shard permutation"
    ~count:10 pconfig_arb (fun c ->
      let traces = par_traces c in
      let permuted = rotate c.rot (List.rev traces) in
      let v1 = Monitor.merged_verdict traces in
      let v2 = Monitor.merged_verdict permuted in
      let c1 = Export.canonical (List.map snd traces) in
      let c2 = Export.canonical (List.map snd permuted) in
      Monitor.clean v1
      && String.equal (Monitor.render v1) (Monitor.render v2)
      && v1 = v2
      && String.equal c1 c2)

let suite =
  [
    Alcotest.test_case "fault-free LF move: clean (serial)" `Quick
      test_clean_serial;
    Alcotest.test_case "fault-free OP move: clean (2 shards)" `Quick
      test_clean_sharded;
    Alcotest.test_case "seeded Drop_buffered: exact loss finding" `Quick
      test_seeded_loss;
    Alcotest.test_case "seeded Drop_buffered: deterministic report" `Quick
      test_seeded_loss_deterministic;
    Alcotest.test_case "seeded Skip_order_wait: online order finding" `Quick
      test_seeded_reorder;
    Alcotest.test_case "tap on a disabled tracer never fires" `Quick
      test_disabled_tap;
    QCheck_alcotest.to_alcotest prop_permutation_invariance;
  ]
