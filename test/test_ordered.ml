(* Ordered-store equivalence (ISSUE 4): the always-sorted mirrors that
   replaced materialize-then-sort enumeration must be observationally
   identical — same keys, same order, same values — to the retained
   fold-and-sort references, under arbitrary insert/remove/get
   interleavings. Plus allocation-budget regressions for the
   getPerflow fast path: the point of the ordered stores and scratch
   buffers is that a scoped get neither sorts nor churns the minor
   heap, and a budget test keeps that true. *)

module Omap = Opennf_util.Omap
module IntMap = Map.Make (Int)
open Opennf_net
open Opennf_state

(* --- generators: a small universe so churn collides often ------------- *)

let ip a b = Ipaddr.v 10 0 (a land 3) (b land 7)

let key a b =
  Flow.make ~src:(ip a b) ~dst:(ip b a)
    ~proto:(if a land 1 = 0 then Flow.Tcp else Flow.Udp)
    ~sport:(1000 + (a land 3))
    ~dport:(1000 + (b land 3))
    ()

let filter_of c a b =
  match c mod 8 with
  | 0 -> Filter.any
  | 1 -> Filter.of_src_host (ip a b)
  | 2 -> Filter.of_dst_host (ip a b)
  | 3 -> Filter.of_src_prefix (Ipaddr.Prefix.make (ip a b) 24)
  | 4 -> Filter.make ~src:(Ipaddr.Prefix.host (ip a b)) ~dst:(Ipaddr.Prefix.host (ip b a)) ()
  | 5 -> Filter.make ~src:(Ipaddr.Prefix.host (ip a b)) ~dst_port:(1000 + (b land 3)) ()
  | 6 -> Filter.make ~proto:(if a land 1 = 0 then Flow.Tcp else Flow.Udp) ()
  | _ -> Filter.of_key (key a b)

let ops_arb =
  QCheck.(list_of_size (Gen.int_range 1 120) (triple small_nat small_nat small_nat))

let show_pairs pp l =
  String.concat ";" (List.map (fun (k, v) -> Format.asprintf "%a=%d" pp k v) l)

(* --- store equivalence under churn ------------------------------------ *)

let perflow_equiv =
  QCheck.Test.make ~name:"perflow: ordered matching == sorted reference (random)"
    ~count:60 ops_arb (fun ops ->
      let store = Store.Perflow.create () in
      List.for_all
        (fun (c, a, b) ->
          match c mod 5 with
          | 0 | 1 ->
            Store.Perflow.set store (key a b) c;
            true
          | 2 ->
            Store.Perflow.remove store (key a b);
            true
          | _ ->
            let f = filter_of c a b in
            let got = Store.Perflow.matching store f in
            let want = Store.Perflow.matching_reference store f in
            if got <> want then
              QCheck.Test.fail_reportf "filter %s: got [%s] want [%s]"
                (Filter.to_string f) (show_pairs Flow.pp got)
                (show_pairs Flow.pp want)
            else true)
        ops)

let per_host_equiv =
  QCheck.Test.make ~name:"per-host: ordered matching == sorted reference (random)"
    ~count:60 ops_arb (fun ops ->
      let store = Store.Per_host.create () in
      List.for_all
        (fun (c, a, b) ->
          match c mod 5 with
          | 0 | 1 ->
            Store.Per_host.set store (ip a b) c;
            true
          | 2 ->
            Store.Per_host.remove store (ip a b);
            true
          | 3 ->
            Store.Per_host.update store (ip a b)
              ~default:(fun () -> 0)
              ~f:(fun v -> v + 1);
            true
          | _ ->
            let f = filter_of c a b in
            let got = Store.Per_host.matching store f in
            let want = Store.Per_host.matching_reference store f in
            if got <> want then
              QCheck.Test.fail_reportf "filter %s: got [%s] want [%s]"
                (Filter.to_string f) (show_pairs Ipaddr.pp got)
                (show_pairs Ipaddr.pp want)
            else true)
        ops)

let keyed_equiv =
  QCheck.Test.make ~name:"keyed: ordered matching == sorted reference (random)"
    ~count:60 ops_arb (fun ops ->
      let relevant (f : Filter.t) k _v =
        match f.Filter.src_port with
        | Some p -> k mod 3 = p mod 3
        | None -> true
      in
      let store = Store.Keyed.create ~relevant () in
      List.for_all
        (fun (c, a, b) ->
          match c mod 4 with
          | 0 | 1 ->
            Store.Keyed.set store (a land 15) (b + c);
            true
          | 2 ->
            Store.Keyed.remove store (a land 15);
            true
          | _ ->
            let f =
              if c land 1 = 0 then Filter.any
              else Filter.make ~src_port:(1000 + (a land 3)) ()
            in
            Store.Keyed.matching store f
            = Store.Keyed.matching_reference store f)
        ops)

(* The ordered-map helper itself against the stdlib Map oracle. *)
let omap_oracle =
  QCheck.Test.make ~name:"omap: set/remove/find/walk == stdlib Map (random)"
    ~count:120
    QCheck.(list (pair small_nat small_nat))
    (fun ops ->
      let om = Omap.create ~cmp:Int.compare in
      let oracle = ref IntMap.empty in
      List.iter
        (fun (c, k) ->
          if c mod 3 = 2 then begin
            Omap.remove om k;
            oracle := IntMap.remove k !oracle
          end
          else begin
            Omap.set om k c;
            oracle := IntMap.add k c !oracle
          end)
        ops;
      Omap.to_alist om = IntMap.bindings !oracle
      && Omap.cardinal om = IntMap.cardinal !oracle
      && List.for_all
           (fun (_, k) -> Omap.find_opt om k = IntMap.find_opt k !oracle)
           ops
      && Omap.fold_asc (fun k v acc -> (k, v) :: acc) om []
         = List.rev (IntMap.bindings !oracle))

(* --- allocation budgets ------------------------------------------------ *)

let minor_words_per ~iters f =
  f ();
  (* warm caches and one-time setup *)
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  (Gc.minor_words () -. before) /. float_of_int iters

let populate_prads n =
  let prads = Opennf_nfs.Prads.create () in
  let impl = Opennf_nfs.Prads.impl prads in
  for i = 0 to n - 1 do
    let k =
      Flow.make
        ~src:(Ipaddr.of_int (0x0A000000 lor (i lsr 6)))
        ~dst:(Ipaddr.of_int 0xC0A80101)
        ~sport:(1024 + (i land 63))
        ~dport:80 ()
    in
    impl.Opennf_sb.Nf_api.process_packet (Packet.create ~id:i ~key:k ~sent_at:0.0 ())
  done;
  impl

(* The raw scoped probe must stay O(1) allocations — a handful of words
   for the canonical key and the result cell, nothing proportional to
   the store. *)
let test_matching_alloc_budget () =
  let store = Store.Perflow.create () in
  for i = 0 to 9_999 do
    Store.Perflow.set store (key (i land 255) (i lsr 8)) i
  done;
  let f = Filter.of_key (key 7 42) in
  let per_op =
    minor_words_per ~iters:1000 (fun () ->
        ignore (Store.Perflow.matching store f))
  in
  Alcotest.(check bool)
    (Printf.sprintf "exact matching stays under 128 minor words/op (got %.1f)"
       per_op)
    true (per_op < 128.0)

(* NF-level getPerflow (list + chunk export) on a 10k-flow PRADS: scoped
   enumeration plus one scratch-buffer encode. The budget has ~3x
   headroom over the measured cost but is far below what a single sort
   of the store (~10k list cells) would spend. *)
let test_get_perflow_alloc_budget () =
  let impl = populate_prads 10_000 in
  let f =
    Filter.of_key
      (Flow.make
         ~src:(Ipaddr.of_int (0x0A000000 lor (5_000 lsr 6)))
         ~dst:(Ipaddr.of_int 0xC0A80101)
         ~sport:(1024 + (5_000 land 63))
         ~dport:80 ())
  in
  let per_op =
    minor_words_per ~iters:500 (fun () ->
        List.iter
          (fun flowid -> ignore (impl.Opennf_sb.Nf_api.export_perflow flowid))
          (impl.Opennf_sb.Nf_api.list_perflow f))
  in
  Alcotest.(check bool)
    (Printf.sprintf "getPerflow stays under 2048 minor words/op (got %.1f)"
       per_op)
    true (per_op < 2048.0)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ perflow_equiv; per_host_equiv; keyed_equiv; omap_oracle ]
  @ [
      Alcotest.test_case "alloc budget: exact store matching" `Quick
        test_matching_alloc_budget;
      Alcotest.test_case "alloc budget: NF getPerflow path" `Quick
        test_get_perflow_alloc_budget;
    ]
