(* Observability layer (ISSUE 5): span well-formedness, trace
   determinism (across runs and across serial vs domain-pool
   execution), the disabled path's zero-allocation budget, and
   reconciliation of the metrics registry against operation reports. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
module Obs = Opennf_obs
module Stats = Opennf_util.Stats
open Opennf_net
open Opennf

(* A small seeded testbed: two PRADS monitors, steady traffic, one
   loss-free parallel move submitted through the scheduler (so op,
   transfer, sched, southbound, channel and audit events all hit the
   same trace). *)
let traced_scenario ?(trace = true) () =
  let obs = Obs.Hub.create ~trace () in
  let fab = Fabric.create ~seed:5 ~obs () in
  let p1 = Opennf_nfs.Prads.create () in
  let p2 = Opennf_nfs.Prads.create () in
  let nf1, _ =
    Fabric.add_nf fab ~name:"prads1" ~impl:(Opennf_nfs.Prads.impl p1)
      ~costs:Costs.prads
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"prads2" ~impl:(Opennf_nfs.Prads.impl p2)
      ~costs:Costs.prads
  in
  let gen = Opennf_trace.Gen.create () in
  let schedule, _ =
    Opennf_trace.Gen.steady_flows gen ~flows:20 ~rate:2000.0 ~start:0.05
      ~duration:0.6 ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  let report = ref None in
  Engine.schedule_at fab.engine 0.3 (fun () ->
      Proc.spawn fab.engine (fun () ->
          let ivar =
            Move.submit fab.sched
              (Move.spec ~src:nf1 ~dst:nf2 ~filter:Filter.any
                 ~guarantee:Move.Loss_free ~parallel:true ())
          in
          report := Some (Op_error.ok_exn (Proc.Ivar.read ivar))));
  Fabric.run fab;
  (obs, Option.get !report)

(* --- span well-formedness ------------------------------------------------ *)

let test_well_formed () =
  let obs, _ = traced_scenario () in
  let tr = Obs.Hub.trace obs in
  Alcotest.(check bool) "trace recorded events" true (Obs.Trace.length tr > 0);
  let open_vt = Hashtbl.create 64 in
  (* id -> open stamp *)
  let ever = Hashtbl.create 64 in
  (* every id ever opened *)
  let last_vt = ref 0.0 in
  Obs.Trace.iter tr (fun ev ->
      Alcotest.(check bool) "vt non-negative" true (ev.Obs.Trace.vt >= 0.0);
      Alcotest.(check bool)
        "vt non-decreasing in emission order" true
        (ev.Obs.Trace.vt >= !last_vt);
      last_vt := ev.Obs.Trace.vt;
      (if ev.Obs.Trace.parent <> 0 then
         Alcotest.(check bool)
           "parent span opened earlier" true
           (Hashtbl.mem ever ev.Obs.Trace.parent));
      match ev.Obs.Trace.kind with
      | Obs.Trace.Begin ->
        Alcotest.(check bool) "span id positive" true (ev.Obs.Trace.id > 0);
        Alcotest.(check bool)
          "span id fresh" false
          (Hashtbl.mem ever ev.Obs.Trace.id);
        Hashtbl.replace ever ev.Obs.Trace.id ();
        Hashtbl.replace open_vt ev.Obs.Trace.id ev.Obs.Trace.vt
      | Obs.Trace.End -> (
        match Hashtbl.find_opt open_vt ev.Obs.Trace.id with
        | None -> Alcotest.fail "close without matching open"
        | Some opened ->
          Alcotest.(check bool)
            "span duration non-negative" true
            (ev.Obs.Trace.vt >= opened);
          Hashtbl.remove open_vt ev.Obs.Trace.id)
      | Obs.Trace.Instant -> ());
  Alcotest.(check int) "every span closed" 0 (Hashtbl.length open_vt)

(* --- determinism --------------------------------------------------------- *)

let chrome_of_run () =
  let obs, _ = traced_scenario () in
  Obs.Export.chrome (Obs.Hub.trace obs)

let test_deterministic () =
  let a = chrome_of_run () in
  let b = chrome_of_run () in
  Alcotest.(check bool) "chrome export non-trivial" true
    (String.length a > 100);
  Alcotest.(check string) "two seeded runs byte-identical" a b

(* Same scenario under Domain_pool: parallel placement must not leak
   into the virtual-time trace. *)
let test_serial_vs_pool () =
  let serial = chrome_of_run () in
  let pooled =
    Opennf_util.Domain_pool.run ~domains:2
      [| chrome_of_run; chrome_of_run |]
  in
  Array.iter
    (Alcotest.(check string) "pooled run matches serial export" serial)
    pooled

(* --- disabled path: zero allocations ------------------------------------- *)

let minor_words_per ~iters f =
  f ();
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  (Gc.minor_words () -. before) /. float_of_int iters

let test_disabled_alloc () =
  let tr = Obs.Trace.disabled in
  let m = Obs.Metrics.null in
  let c = Obs.Metrics.counter m "x.counter" in
  let g = Obs.Metrics.gauge m "x.gauge" in
  let h = Obs.Metrics.hist m "x.hist" in
  let per_op =
    minor_words_per ~iters:100_000 (fun () ->
        (* The shape every instrumented hot path has: handle updates plus
           an enabled-guard around anything that would allocate. *)
        Obs.Metrics.incr c;
        Obs.Metrics.add c 3;
        Obs.Metrics.set g 1.0;
        Obs.Metrics.observe h 0.5;
        if Obs.Trace.enabled tr then begin
          let s =
            Obs.Trace.span_open tr ~cat:"op" ~name:"never"
              ~attrs:[| ("k", Obs.Trace.Int 1) |] ()
          in
          Obs.Trace.span_close tr s ()
        end;
        let s = Obs.Trace.span_open tr ~cat:"op" ~name:"never" () in
        Obs.Trace.span_close tr s ();
        Obs.Trace.instant tr ~cat:"op" ~name:"never" ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "disabled path allocates ~0 minor words/op (got %.3f)"
       per_op)
    true (per_op < 1.0)

(* --- metrics vs operation reports ---------------------------------------- *)

let test_metrics_reconcile () =
  let obs, report = traced_scenario ~trace:false () in
  let m = Obs.Hub.metrics obs in
  let cv = Obs.Metrics.counter_value m in
  Alcotest.(check int) "op.started" 1 (cv "op.started");
  Alcotest.(check int) "op.completed" 1 (cv "op.completed");
  Alcotest.(check int) "op.failed" 0 (cv "op.failed");
  Alcotest.(check int) "sched.submitted" 1 (cv "sched.submitted");
  Alcotest.(check int) "sched.admitted" 1 (cv "sched.admitted");
  Alcotest.(check int)
    "op.chunks matches the move report"
    (report.Move.per_chunks + report.Move.multi_chunks)
    (cv "op.chunks");
  Alcotest.(check int)
    "op.bytes matches the move report" report.Move.state_bytes (cv "op.bytes");
  Alcotest.(check bool)
    "southbound taps saw the transfer" true
    (cv "sb.requests" > 0 && cv "sb.replies" > 0 && cv "ch.msgs" > 0);
  (* trace:false — nothing must have landed in the (disabled) tracer. *)
  Alcotest.(check int)
    "disabled tracer stayed empty" 0
    (Obs.Trace.length (Obs.Hub.trace obs))

(* A tracing run still exports valid, parseable-enough JSON: balanced
   braces/brackets and one line per event plus the envelope. *)
let test_chrome_shape () =
  let obs, _ = traced_scenario () in
  let s = Obs.Export.chrome (Obs.Hub.trace obs) in
  let count ch = String.fold_left (fun n c -> if c = ch then n + 1 else n) 0 s in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced brackets" (count '[') (count ']');
  Alcotest.(check bool) "envelope present" true
    (String.length s >= 15 && String.sub s 0 15 = "{\"traceEvents\":")

(* --- Stats satellites: Summary.merge and the log-bucket histogram -------- *)

let summary_merge_prop =
  QCheck.Test.make ~name:"Summary.merge == sequential add" ~count:200
    QCheck.(pair (list (float_range 0.0 1000.0)) (list (float_range 0.0 1000.0)))
    (fun (xs, ys) ->
      let a = Stats.Summary.create () in
      let b = Stats.Summary.create () in
      let all = Stats.Summary.create () in
      List.iter (Stats.Summary.add a) xs;
      List.iter (Stats.Summary.add b) ys;
      List.iter (Stats.Summary.add all) (xs @ ys);
      Stats.Summary.merge a b;
      let close x y = Float.abs (x -. y) <= 1e-6 *. (1.0 +. Float.abs y) in
      Stats.Summary.count a = Stats.Summary.count all
      && close (Stats.Summary.mean a) (Stats.Summary.mean all)
      && close (Stats.Summary.stddev a) (Stats.Summary.stddev all)
      && (xs = [] && ys = []
         || Stats.Summary.min a = Stats.Summary.min all
            && Stats.Summary.max a = Stats.Summary.max all))

(* Merged histogram quantiles stay within the documented relative error
   of the exact sample quantiles (1.5x slack over the one-bucket bound
   for rank rounding at small counts). *)
let histogram_merge_prop =
  QCheck.Test.make ~name:"Histogram.merge quantiles vs exact samples"
    ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 100) (float_range 1e-6 100.0))
        (list_of_size Gen.(1 -- 100) (float_range 1e-6 100.0)))
    (fun (xs, ys) ->
      let ha = Stats.Histogram.create () in
      let hb = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add ha) xs;
      List.iter (Stats.Histogram.add hb) ys;
      Stats.Histogram.merge ha hb;
      let exact = Stats.Reservoir.create () in
      List.iter (Stats.Reservoir.add exact) (xs @ ys);
      let tol = Stats.Histogram.relative_error *. 1.5 in
      let ok q =
        let approx = Stats.Histogram.quantile ha q in
        let truth = Stats.Reservoir.percentile exact q in
        approx <= truth *. tol && truth <= approx *. tol
      in
      Stats.Histogram.count ha = List.length xs + List.length ys
      && ok 0.5 && ok 0.9 && ok 0.99)

let suite =
  [
    Alcotest.test_case "spans well-formed" `Quick test_well_formed;
    Alcotest.test_case "trace deterministic across runs" `Quick
      test_deterministic;
    Alcotest.test_case "trace deterministic serial vs pool" `Quick
      test_serial_vs_pool;
    Alcotest.test_case "disabled path allocation budget" `Quick
      test_disabled_alloc;
    Alcotest.test_case "metrics reconcile with reports" `Quick
      test_metrics_reconcile;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_shape;
    QCheck_alcotest.to_alcotest summary_merge_prop;
    QCheck_alcotest.to_alcotest histogram_merge_prop;
  ]
