(* Fault injection: crash-at-every-phase rollback for moves, resilient
   southbound calls under lossy/duplicating control channels, and the
   primitives (read_timeout, fill_if_empty, fault plans) they rest on. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Faults = Opennf_sim.Faults
open Opennf_net
open Opennf
module H = Helpers

(* A resilience policy snappy enough for short tests but tolerant of the
   testbed's normal control-plane latencies. *)
let resilience =
  {
    Controller.call_timeout = 0.05;
    max_retries = 2;
    backoff = 0.01;
    liveness_misses = 3;
    probe_period = 0.1;
  }

(* Generous variant: never declares an instance dead by mistake under
   heavy jitter; used for the link-fault properties. *)
let patient =
  {
    Controller.call_timeout = 0.5;
    max_retries = 3;
    backoff = 0.05;
    liveness_misses = 100;
    probe_period = 0.5;
  }

(* --- primitives --------------------------------------------------------- *)

let test_read_timeout () =
  let engine = Engine.create () in
  let observed = ref [] in
  Proc.spawn engine (fun () ->
      let ivar = Proc.Ivar.create engine in
      Engine.schedule engine ~delay:0.5 (fun () -> Proc.Ivar.fill ivar 42);
      (match Proc.Ivar.read_timeout ivar ~timeout:0.1 with
      | None -> observed := "miss" :: !observed
      | Some _ -> observed := "early" :: !observed);
      (match Proc.Ivar.read_timeout ivar ~timeout:1.0 with
      | Some 42 -> observed := "hit" :: !observed
      | Some _ | None -> observed := "wrong" :: !observed));
  Engine.run engine;
  Alcotest.(check (list string)) "timeout then value" [ "hit"; "miss" ]
    !observed

let test_fill_if_empty () =
  let engine = Engine.create () in
  let ivar = Proc.Ivar.create engine in
  Alcotest.(check bool) "first fill" true (Proc.Ivar.fill_if_empty ivar 1);
  Alcotest.(check bool) "second fill ignored" false
    (Proc.Ivar.fill_if_empty ivar 2);
  Engine.run engine;
  Alcotest.(check (option int)) "first value wins" (Some 1)
    (Proc.Ivar.peek ivar)

let test_fault_plans_are_deterministic () =
  let plans seed =
    let engine = Engine.create () in
    let f = Faults.create engine ~seed () in
    Faults.set_link f ~name:"l" ~drop:0.2 ~dup:0.2 ~jitter:0.001 ();
    List.init 64 (fun _ -> Faults.plan f ~link:"l")
  in
  Alcotest.(check bool) "same seed, same schedule" true
    (plans 11 = plans 11);
  Alcotest.(check bool) "different seed, different schedule" true
    (plans 11 <> plans 12)

let test_no_profile_draws_nothing () =
  let engine = Engine.create () in
  let f = Faults.create engine () in
  let p = List.init 16 (fun _ -> Faults.plan f ~link:"quiet") in
  Alcotest.(check bool) "all pass-through" true
    (List.for_all (fun x -> x = (1, 0.0)) p);
  Alcotest.(check int) "nothing dropped" 0 (Faults.dropped_count f)

(* --- typed errors from the southbound API ------------------------------- *)

let test_del_allflows_is_bad_spec () =
  let tb = H.prads_pair ~flows:5 () in
  let saw = ref None in
  H.run_with tb ~at:1.0 (fun () ->
      saw :=
        Some (Controller.del tb.H.fab.ctrl tb.H.nf1 ~scope:Opennf_state.Scope.All []));
  match !saw with
  | Some (Error (Op_error.Bad_spec _)) -> ()
  | _ -> Alcotest.fail "del ~scope:All must be Bad_spec"

let test_call_timeout_when_replies_drop () =
  (* The source's reply channel eats everything; with liveness disabled
     (high miss threshold) the call must surface as Timeout. *)
  let tb =
    H.prads_pair ~flows:5 ~resilience:{ resilience with liveness_misses = 99 } ()
  in
  Faults.set_link tb.H.fab.faults ~name:"prads1->ctrl" ~drop:1.0 ();
  let saw = ref None in
  H.run_with tb ~at:1.0 (fun () ->
      saw :=
        Some
          (Controller.get tb.H.fab.ctrl tb.H.nf1 ~scope:Opennf_state.Scope.Per
             Filter.any));
  match !saw with
  | Some (Error (Op_error.Timeout { nf = "prads1"; _ })) -> ()
  | _ -> Alcotest.fail "expected Timeout from a reply blackhole"

let test_liveness_declares_death () =
  let tb = H.prads_pair ~flows:5 ~rate:200.0 ~resilience () in
  Faults.crash_at tb.H.fab.faults ~node:"prads1" 0.9;
  let deaths = ref [] in
  Controller.on_nf_death tb.H.fab.ctrl (fun name -> deaths := name :: !deaths);
  let saw = ref None in
  H.run_with tb ~at:1.0 (fun () ->
      saw :=
        Some
          (Controller.get tb.H.fab.ctrl tb.H.nf1 ~scope:Opennf_state.Scope.Per
             Filter.any));
  (match !saw with
  | Some (Error (Op_error.Nf_crashed { nf = "prads1" })) -> ()
  | _ -> Alcotest.fail "expected Nf_crashed after liveness misses");
  Alcotest.(check (list string)) "death callback fired" [ "prads1" ] !deaths;
  Alcotest.(check bool) "marked dead" false
    (Controller.nf_alive tb.H.fab.ctrl tb.H.nf1)

(* --- crash-at-every-phase move rollback --------------------------------- *)

(* Run a move at t=1.0 under [resilience], crashing [node] when [phase]
   fires. Returns (result, testbed, survivor-processed-before-crash). *)
let crash_at_phase ~node ~phase ?(guarantee = Move.Loss_free) () =
  let tb = H.prads_pair ~flows:10 ~rate:500.0 ~duration:2.5 ~resilience () in
  let result = ref None in
  let processed_at_crash = ref (-1) in
  H.run_with tb ~at:1.0 (fun () ->
      result :=
        Some
          (Move.run tb.H.fab.ctrl
             (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
                ~guarantee
                ~on_phase:(fun p ->
                  if p = phase then begin
                    Faults.crash_now tb.H.fab.faults ~node;
                    processed_at_crash :=
                      Opennf_sb.Runtime.processed_count
                        (if node = "prads1" then tb.H.rt2 else tb.H.rt1)
                  end)
                ())));
  (Option.get !result, tb, !processed_at_crash)

let check_crashed ~nf = function
  | Error (Op_error.Nf_crashed { nf = n }) ->
    Alcotest.(check string) "crashed instance reported" nf n
  | Ok _ -> Alcotest.fail "move must not succeed across a crash"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Op_error.to_string e)

(* After a rollback the survivor must keep processing traffic: the flows
   were re-routed, not blackholed. *)
let check_survivor_kept_processing ~survivor_rt ~processed_at_crash =
  Alcotest.(check bool) "hook saw the crash" true (processed_at_crash >= 0);
  Alcotest.(check bool) "survivor processed packets after the rollback" true
    (Opennf_sb.Runtime.processed_count survivor_rt > processed_at_crash)

let test_src_crash_during_get () =
  (* Source dies before exporting anything: nothing was captured, the
     destination starts fresh, and traffic must flow to it. *)
  let result, tb, p = crash_at_phase ~node:"prads1" ~phase:Move.Transfer_started () in
  check_crashed ~nf:"prads1" result;
  check_survivor_kept_processing ~survivor_rt:tb.H.rt2 ~processed_at_crash:p

let test_dst_crash_during_put () =
  (* Destination dies after the source's state was captured and deleted:
     the rollback must re-install every chunk on the source. *)
  let result, tb, p = crash_at_phase ~node:"prads2" ~phase:Move.State_deleted () in
  check_crashed ~nf:"prads2" result;
  Alcotest.(check int) "all state restored at the source" 10
    (Opennf_nfs.Prads.connection_count tb.H.prads1);
  Alcotest.(check int) "nothing left at the dead destination" 0
    (Opennf_nfs.Prads.connection_count tb.H.prads2);
  check_survivor_kept_processing ~survivor_rt:tb.H.rt1 ~processed_at_crash:p

let test_dst_crash_after_install () =
  (* Destination dies after acking every put: the final route toward it
     is already installed, so the rollback must retire that rule (it
     outranks the base route) or the survivor never sees traffic. *)
  let result, tb, p = crash_at_phase ~node:"prads2" ~phase:Move.State_installed () in
  check_crashed ~nf:"prads2" result;
  Alcotest.(check int) "state restored at the source" 10
    (Opennf_nfs.Prads.connection_count tb.H.prads1);
  check_survivor_kept_processing ~survivor_rt:tb.H.rt1 ~processed_at_crash:p

let test_dst_crash_at_phase1 () =
  let result, tb, p =
    crash_at_phase ~node:"prads2" ~phase:Move.Phase1_installed
      ~guarantee:Move.Order_preserving ()
  in
  check_crashed ~nf:"prads2" result;
  Alcotest.(check int) "state restored at the source" 10
    (Opennf_nfs.Prads.connection_count tb.H.prads1);
  check_survivor_kept_processing ~survivor_rt:tb.H.rt1 ~processed_at_crash:p

let test_dst_crash_at_phase2 () =
  let result, tb, p =
    crash_at_phase ~node:"prads2" ~phase:Move.Phase2_installed
      ~guarantee:Move.Order_preserving ()
  in
  check_crashed ~nf:"prads2" result;
  Alcotest.(check int) "state restored at the source" 10
    (Opennf_nfs.Prads.connection_count tb.H.prads1);
  check_survivor_kept_processing ~survivor_rt:tb.H.rt1 ~processed_at_crash:p

let test_fault_free_resilient_move_is_clean () =
  (* Resilience armed but no fault registered: the move must behave like
     a plain loss-free move. *)
  let tb = H.prads_pair ~flows:10 ~rate:500.0 ~resilience () in
  H.run_with tb ~at:1.0 (fun () ->
      match
        Move.run tb.H.fab.ctrl
          (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
             ~guarantee:Move.Loss_free ())
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Op_error.to_string e));
  H.assert_loss_free tb;
  Alcotest.(check int) "state moved" 10
    (Opennf_nfs.Prads.connection_count tb.H.prads2)

(* --- guarantees under link faults (randomized) -------------------------- *)

type link_cfg = {
  seed : int;
  flows : int;
  rate : float;
  dup : float;
  jitter : float;
}

let link_cfg_gen =
  QCheck.Gen.(
    map
      (fun (seed, flows, rate_k, dup_k, jitter_k) ->
        {
          seed;
          flows = 5 + flows;
          rate = 200.0 +. (100.0 *. float_of_int rate_k);
          dup = 0.05 *. float_of_int dup_k;
          jitter = 0.0005 *. float_of_int jitter_k;
        })
      (tup5 (int_bound 10_000) (int_bound 30) (int_bound 8) (int_bound 6)
         (int_bound 4)))

let print_link_cfg c =
  Printf.sprintf "{seed=%d flows=%d rate=%.0f dup=%.2f jitter=%.4f}" c.seed
    c.flows c.rate c.dup c.jitter

let link_cfg_arb = QCheck.make ~print:print_link_cfg link_cfg_gen

(* Jitter and duplication on every controller<->NF channel. Drops are
   excluded: retries recover from them, but only by re-sending whole
   requests, which legitimately re-processes control work; dup/jitter
   must be absorbed with no observable difference. *)
let fault_control_links tb ~dup ~jitter =
  List.iter
    (fun name ->
      Faults.set_link tb.H.fab.faults ~name ~dup ~jitter ())
    [ "ctrl->prads1"; "prads1->ctrl"; "ctrl->prads2"; "prads2->ctrl" ]

let run_faulted_move c ~guarantee =
  let tb =
    H.prads_pair ~seed:c.seed ~flows:c.flows ~rate:c.rate ~resilience:patient ()
  in
  fault_control_links tb ~dup:c.dup ~jitter:c.jitter;
  H.run_with tb ~at:0.6 (fun () ->
      match
        Move.run tb.H.fab.ctrl
          (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any ~guarantee ())
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Op_error.to_string e));
  tb

let no_loss tb =
  Audit.lost tb.H.fab.audit ~nfs:H.nf_names = []
  && Audit.duplicated tb.H.fab.audit = []

let prop_loss_free_under_link_faults =
  QCheck.Test.make
    ~name:"loss-free move under control-channel dup+jitter (random)" ~count:15
    link_cfg_arb (fun c ->
      let tb = run_faulted_move c ~guarantee:Move.Loss_free in
      no_loss tb && Opennf_nfs.Prads.connection_count tb.H.prads1 = 0)

let prop_order_preserving_under_link_faults =
  QCheck.Test.make
    ~name:"OP move under control-channel dup+jitter (random)" ~count:10
    link_cfg_arb (fun c ->
      let tb = run_faulted_move c ~guarantee:Move.Order_preserving in
      no_loss tb
      && Audit.order_violations tb.H.fab.audit = []
      && Audit.arrival_order_violations tb.H.fab.audit = [])

let suite =
  [
    Alcotest.test_case "ivar read_timeout" `Quick test_read_timeout;
    Alcotest.test_case "ivar fill_if_empty" `Quick test_fill_if_empty;
    Alcotest.test_case "fault plans deterministic" `Quick
      test_fault_plans_are_deterministic;
    Alcotest.test_case "no profile, no randomness" `Quick
      test_no_profile_draws_nothing;
    Alcotest.test_case "del all-flows is Bad_spec" `Quick
      test_del_allflows_is_bad_spec;
    Alcotest.test_case "reply blackhole times out" `Quick
      test_call_timeout_when_replies_drop;
    Alcotest.test_case "liveness declares death" `Quick
      test_liveness_declares_death;
    Alcotest.test_case "src crash during get rolls back" `Quick
      test_src_crash_during_get;
    Alcotest.test_case "dst crash during put rolls back" `Quick
      test_dst_crash_during_put;
    Alcotest.test_case "dst crash after install rolls back" `Quick
      test_dst_crash_after_install;
    Alcotest.test_case "dst crash at phase 1 rolls back" `Quick
      test_dst_crash_at_phase1;
    Alcotest.test_case "dst crash at phase 2 rolls back" `Quick
      test_dst_crash_at_phase2;
    Alcotest.test_case "fault-free resilient move is clean" `Quick
      test_fault_free_resilient_move_is_clean;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_loss_free_under_link_faults;
        prop_order_preserving_under_link_faults;
      ]
