(* The §5.1.2 motivation, end to end: a redundancy-elimination decoder
   is moved between instances while encoded traffic flows. A loss-free
   move may reorder packets, letting a reference overtake the data
   packet it was encoded against — the decoder silently drops it and its
   store diverges. An order-preserving move never does. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf

let ip = Ipaddr.v

(* Pre-encode a packet schedule: every payload repeats once, so the
   second occurrence becomes a reference to the first. *)
let encoded_schedule gen ~flows ~rate ~start ~duration =
  let enc = Opennf_nfs.Re_codec.Encoder.create () in
  let keys =
    List.init flows (fun i ->
        Flow.make ~src:(ip 10 1 0 (1 + i)) ~dst:(ip 172 16 0 1)
          ~sport:(10000 + i) ~dport:80 ())
  in
  let keys_arr = Array.of_list keys in
  let interval = 1.0 /. rate in
  let total = int_of_float (duration *. rate) in
  let schedule = ref [] in
  for n = 0 to total - 1 do
    let key = keys_arr.(n mod flows) in
    (* Each payload value reappears 20 packets after its first sighting,
       so a reordering window anywhere in the stream splits many
       data/reference pairs. *)
    let raw =
      Printf.sprintf "content-block-%d"
        (if n mod 40 < 20 then n else n - 20)
    in
    let payload = Opennf_nfs.Re_codec.Encoder.encode_payload enc raw in
    schedule :=
      Opennf_trace.Gen.packet gen
        ~at:(start +. (float_of_int n *. interval))
        ~key ~seq:n ~payload ()
      :: !schedule
  done;
  (List.rev !schedule, keys)

let run_case ~guarantee =
  let fab = Fabric.create ~seed:29 ~packet_out_rate:600.0 () in
  let dec1 = Opennf_nfs.Re_codec.Decoder.create () in
  let dec2 = Opennf_nfs.Re_codec.Decoder.create () in
  let nf1, _ =
    Fabric.add_nf fab ~name:"dec1" ~impl:(Opennf_nfs.Re_codec.Decoder.impl dec1)
      ~costs:Costs.dummy
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"dec2" ~impl:(Opennf_nfs.Re_codec.Decoder.impl dec2)
      ~costs:Costs.dummy
  in
  let gen = Opennf_trace.Gen.create ~seed:31 () in
  let schedule, _keys =
    encoded_schedule gen ~flows:20 ~rate:3000.0 ~start:0.05 ~duration:2.0
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  Engine.schedule_at fab.engine 1.0 (fun () ->
      Proc.spawn fab.engine (fun () ->
          (* The decoder's fingerprint store is all-flows state: include
             it in the move's scope so the snapshot is taken after the
             source stops processing. *)
          ignore
            (Move.run_exn fab.ctrl
               (Move.spec ~src:nf1 ~dst:nf2 ~filter:Filter.any ~guarantee
                  ~scope:[ Opennf_state.Scope.Per; Opennf_state.Scope.All ]
                  ~parallel:true ()))));
  Fabric.run fab;
  ( Opennf_nfs.Re_codec.Decoder.desync_count dec1
    + Opennf_nfs.Re_codec.Decoder.desync_count dec2,
    Audit.lost fab.audit ~nfs:[ "dec1"; "dec2" ] )

let test_loss_free_move_desyncs_decoder () =
  let desyncs, lost = run_case ~guarantee:Move.Loss_free in
  Alcotest.(check (list int)) "still loss-free" [] lost;
  Alcotest.(check bool)
    "reordering broke the decoder (references overtook data)" true
    (desyncs > 0)

let test_order_preserving_move_keeps_decoder_in_sync () =
  let desyncs, lost = run_case ~guarantee:Move.Order_preserving in
  Alcotest.(check (list int)) "loss-free" [] lost;
  Alcotest.(check int) "no desync" 0 desyncs

let suite =
  [
    Alcotest.test_case "LF move desyncs the RE decoder" `Quick
      test_loss_free_move_desyncs_decoder;
    Alcotest.test_case "OP move keeps the RE decoder in sync" `Quick
      test_order_preserving_move_keeps_decoder_in_sync;
  ]
