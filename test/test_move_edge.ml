(* Move edge cases: idle flows, empty filters, repeated moves,
   concurrent disjoint moves, compression, overload. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf
module H = Helpers

let ip = Ipaddr.v

let test_op_move_of_idle_flows_completes () =
  (* The paper's Figure 6 waits for a packet-in before phase 2, which
     blocks forever on idle flows; the barrier-based variant must not.
     Traffic ends at t=1.15; the move runs at t=2 with the network
     silent. *)
  let tb = H.prads_pair ~flows:10 ~rate:200.0 ~duration:1.0 () in
  let finished_at = ref infinity in
  H.run_with tb ~at:2.0 (fun () ->
      let report =
        Move.run_exn tb.H.fab.ctrl
          (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
             ~guarantee:Move.Order_preserving ())
      in
      finished_at := report.Move.finished);
  Alcotest.(check bool) "completed promptly (no first-packet wait)" true
    (!finished_at < 3.0);
  Alcotest.(check int) "state moved" 10
    (Opennf_nfs.Prads.connection_count tb.H.prads2)

let test_move_with_no_matching_state () =
  let tb = H.prads_pair ~flows:5 () in
  H.run_with tb ~at:1.0 (fun () ->
      let report =
        Move.run_exn tb.H.fab.ctrl
          (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2
             ~filter:(Filter.of_src_host (ip 203 0 113 250))
             ~guarantee:Move.Loss_free ())
      in
      Alcotest.(check int) "zero chunks" 0 report.Move.per_chunks;
      Alcotest.(check int) "zero bytes" 0 report.Move.state_bytes);
  Alcotest.(check int) "source untouched" 5
    (Opennf_nfs.Prads.connection_count tb.H.prads1)

let test_ping_pong_move () =
  (* Move everything away and back again; state must survive both trips
     and traffic keeps flowing. *)
  let tb = H.prads_pair ~flows:10 ~rate:500.0 ~duration:4.0 () in
  H.run_with tb ~at:1.0 (fun () ->
      ignore
        (Move.run_exn tb.H.fab.ctrl
           (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
              ~guarantee:Move.Loss_free ~parallel:true ()));
      Proc.sleep 1.0;
      ignore
        (Move.run_exn tb.H.fab.ctrl
           (Move.spec ~src:tb.H.nf2 ~dst:tb.H.nf1 ~filter:Filter.any
              ~guarantee:Move.Loss_free ~parallel:true ())));
  Alcotest.(check int) "state home again" 10
    (Opennf_nfs.Prads.connection_count tb.H.prads1);
  Alcotest.(check int) "none left behind" 0
    (Opennf_nfs.Prads.connection_count tb.H.prads2);
  H.assert_loss_free tb

let test_concurrent_disjoint_moves () =
  (* Two moves with disjoint filters run simultaneously on the same
     controller without interfering. *)
  let tb = H.prads_pair ~flows:40 ~rate:1000.0 () in
  let half_a = Filter.of_src_prefix (Ipaddr.Prefix.of_string "10.1.0.0/25") in
  let half_b = Filter.of_src_prefix (Ipaddr.Prefix.of_string "10.1.0.128/25") in
  H.run_with tb ~at:1.0 (fun () ->
      let m1 =
        Move.start_exn tb.H.fab.ctrl
          (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:half_a
             ~guarantee:Move.Loss_free ~parallel:true ())
      in
      let m2 =
        Move.start_exn tb.H.fab.ctrl
          (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:half_b
             ~guarantee:Move.Loss_free ~parallel:true ())
      in
      let r1 = Proc.Ivar.read m1 and r2 = Proc.Ivar.read m2 in
      Alcotest.(check int) "all flows covered" 40
        (r1.Move.per_chunks + r2.Move.per_chunks));
  Alcotest.(check int) "all at destination" 40
    (Opennf_nfs.Prads.connection_count tb.H.prads2);
  H.assert_loss_free tb

let test_compressed_move_is_still_loss_free () =
  let tb = H.prads_pair ~flows:30 () in
  H.run_with tb ~at:1.0 (fun () ->
      ignore
        (Move.run_exn tb.H.fab.ctrl
           (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
              ~guarantee:Move.Loss_free ~parallel:true ~compress:true ())));
  H.assert_loss_free tb;
  Alcotest.(check int) "all state arrived intact" 30
    (Opennf_nfs.Prads.connection_count tb.H.prads2)

let test_move_under_source_overload () =
  (* The source NF is saturated (queue growing) when the move starts:
     loss-freedom must still hold. *)
  let fab = Fabric.create ~seed:3 () in
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let slow = { Costs.prads with Costs.proc_time = 0.002 } in
  let nf1, _ =
    Fabric.add_nf fab ~name:"prads1" ~impl:(Opennf_nfs.Prads.impl prads1)
      ~costs:slow
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"prads2" ~impl:(Opennf_nfs.Prads.impl prads2)
      ~costs:Costs.prads
  in
  let gen = Opennf_trace.Gen.create () in
  (* 1000 pkt/s against a 500 pkt/s instance. *)
  let schedule, _ =
    Opennf_trace.Gen.steady_flows gen ~flows:20 ~rate:1000.0 ~start:0.05
      ~duration:2.0 ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  Engine.schedule_at fab.engine 1.0 (fun () ->
      Proc.spawn fab.engine (fun () ->
          ignore
            (Move.run_exn fab.ctrl
               (Move.spec ~src:nf1 ~dst:nf2 ~filter:Filter.any
                  ~guarantee:Move.Loss_free ~parallel:true ()))));
  Fabric.run fab;
  let lost = Audit.lost fab.audit ~nfs:[ "prads1"; "prads2" ] in
  Alcotest.(check (list int)) "loss-free under overload" [] lost;
  Alcotest.(check (list int)) "no duplicates" [] (Audit.duplicated fab.audit)

let test_move_report_accounting () =
  let tb = H.prads_pair ~flows:25 () in
  H.run_with tb ~at:1.0 (fun () ->
      let report =
        Move.run_exn tb.H.fab.ctrl
          (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
             ~scope:[ Opennf_state.Scope.Per; Opennf_state.Scope.Multi ]
             ~guarantee:Move.Loss_free ())
      in
      Alcotest.(check int) "per-flow chunks" 25 report.Move.per_chunks;
      Alcotest.(check bool) "multi-flow chunks present" true
        (report.Move.multi_chunks > 0);
      Alcotest.(check bool) "bytes accounted" true (report.Move.state_bytes > 0);
      Alcotest.(check bool) "duration positive" true (Move.duration report > 0.0);
      Alcotest.(check string) "names" "prads1" report.Move.rp_src)

let test_spec_validation () =
  let tb = H.prads_pair () in
  (* An impossible spec is a typed error from run, not an exception. *)
  H.run_with tb ~at:1.0 (fun () ->
      match
        Move.run tb.H.fab.ctrl
          (Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
             ~scope:[ Opennf_state.Scope.Per; Opennf_state.Scope.Multi ]
             ~early_release:true ())
      with
      | Error (Op_error.Bad_spec _) -> ()
      | Ok _ -> Alcotest.fail "ER over both scopes must be rejected"
      | Error e -> Alcotest.fail ("unexpected error: " ^ Op_error.to_string e));
  (* ER implies parallel. *)
  let spec =
    Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any ~early_release:true ()
  in
  Alcotest.(check bool) "ER implies PL" true spec.Move.options.Op_options.parallel

let suite =
  [
    Alcotest.test_case "OP move of idle flows completes" `Quick
      test_op_move_of_idle_flows_completes;
    Alcotest.test_case "empty-filter move is a no-op" `Quick
      test_move_with_no_matching_state;
    Alcotest.test_case "ping-pong move" `Quick test_ping_pong_move;
    Alcotest.test_case "concurrent disjoint moves" `Quick
      test_concurrent_disjoint_moves;
    Alcotest.test_case "compressed move is loss-free" `Quick
      test_compressed_move_is_still_loss_free;
    Alcotest.test_case "move under source overload" `Quick
      test_move_under_source_overload;
    Alcotest.test_case "report accounting" `Quick test_move_report_accounting;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
  ]
