(* The operation scheduler (ISSUE 3): footprint conflict semantics,
   concurrency of disjoint operations, serialization of overlapping
   ones, crash containment under concurrency, southbound piece batching,
   and the Op_engine accounting helper they all share. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Faults = Opennf_sim.Faults
module Scope = Opennf_state.Scope
module Costs = Opennf_sb.Costs
module Dummy = Opennf_nfs.Dummy
open Opennf_net
open Opennf

(* --- filter overlap ----------------------------------------------------- *)

let subnet i = Ipaddr.Prefix.make (Ipaddr.v 10 (80 + i) 0 0) 16
let servers = Ipaddr.Prefix.make (Ipaddr.v 172 31 0 0) 16

(* Src and dst both bound: disjoint subnets give genuinely disjoint
   filters even under the mirrored (connection-level) check. *)
let two_sided i = Filter.make ~src:(subnet i) ~dst:servers ()

let key_in_subnet i k =
  Flow.make
    ~src:(Ipaddr.of_int (Ipaddr.to_int (Ipaddr.v 10 (80 + i) 0 0) + k + 1))
    ~dst:(Ipaddr.v 172 31 0 1) ~proto:Flow.Tcp ~sport:(30000 + k) ~dport:443 ()

let test_filter_overlaps () =
  let check = Alcotest.(check bool) in
  check "filter vs itself" true (Filter.overlaps (two_sided 0) (two_sided 0));
  check "disjoint two-sided subnets" false
    (Filter.overlaps (two_sided 0) (two_sided 1));
  check "any overlaps everything" true (Filter.overlaps Filter.any (two_sided 0));
  check "contained prefix overlaps" true
    (Filter.overlaps
       (Filter.of_src_prefix (subnet 0))
       (Filter.of_key (key_in_subnet 0 1)));
  check "distinct exact keys are disjoint" false
    (Filter.overlaps
       (Filter.of_key (key_in_subnet 0 1))
       (Filter.of_key (key_in_subnet 0 2)));
  (* Connection-level conservatism: a src-only prefix also covers the
     reverse direction, so two src-only prefixes always intersect. *)
  check "src-only prefixes overlap via the mirror" true
    (Filter.overlaps
       (Filter.of_src_prefix (subnet 0))
       (Filter.of_src_prefix (subnet 1)))

(* --- footprint conflicts ------------------------------------------------ *)

let test_footprint_conflicts () =
  let fp = Sched.Footprint.make in
  let conflicts held cand = Sched.Footprint.conflicts ~held ~cand in
  let check = Alcotest.(check bool) in
  let f0 = two_sided 0 and f1 = two_sided 1 in
  (* Reads never conflict with reads, even on the same instance+flows. *)
  check "read/read" false
    (conflicts
       (fp ~filters:[ f0 ] ~reads:[ "a" ] ())
       (fp ~filters:[ f0 ] ~reads:[ "a" ] ()));
  (* Write/write on the same instance with overlapping flows. *)
  check "write/write same nf" true
    (conflicts
       (fp ~filters:[ f0 ] ~writes:[ "a" ] ())
       (fp ~filters:[ f0 ] ~writes:[ "a" ] ()));
  (* Same instances, disjoint flows: no conflict. *)
  check "write/write disjoint filters" false
    (conflicts
       (fp ~filters:[ f0 ] ~writes:[ "a" ] ())
       (fp ~filters:[ f1 ] ~writes:[ "a" ] ()));
  (* Write vs read of the same instance. *)
  check "write/read" true
    (conflicts
       (fp ~filters:[ f0 ] ~writes:[ "a" ] ())
       (fp ~filters:[ f0 ] ~reads:[ "a" ] ()));
  (* Disjoint instance sets never clash without routes. *)
  check "disjoint instances" false
    (conflicts
       (fp ~filters:[ f0 ] ~writes:[ "a" ] ())
       (fp ~filters:[ f0 ] ~writes:[ "b" ] ()));
  (* Two route-touching ops with overlapping flows clash even on
     disjoint instances. *)
  check "routes x routes" true
    (conflicts
       (fp ~filters:[ f0 ] ~writes:[ "a" ] ~routes:true ())
       (fp ~filters:[ f0 ] ~writes:[ "b" ] ~routes:true ()));
  (* Early release: once the holder released a flow, an exact-key
     candidate for it passes. *)
  let held = fp ~filters:[ f0 ] ~writes:[ "a" ] () in
  let want = fp ~filters:[ Filter.of_key (key_in_subnet 0 3) ] ~writes:[ "a" ] () in
  check "exact-key blocked before release" true (conflicts held want);
  Sched.Footprint.release held (key_in_subnet 0 3);
  check "exact-key passes after release" false (conflicts held want)

(* --- dummy-NF fabric ---------------------------------------------------- *)

type pair = { src : Controller.nf; dst : Controller.nf; d1 : Dummy.t; d2 : Dummy.t }

(* [n] src/dst dummy pairs; pair [i] holds [flows] flows in subnet
   [subnet_of i] (so callers choose disjoint or shared coverage). *)
let dummy_bed ?(seed = 5) ?config ?resilience ?max_concurrent_ops ~n ~flows
    ~subnet_of () =
  let fab = Fabric.create ~seed ?config ?resilience ?max_concurrent_ops () in
  let pairs =
    List.init n (fun i ->
        let d1 = Dummy.create () in
        let d2 = Dummy.create () in
        Dummy.seed_flows d1 (List.init flows (key_in_subnet (subnet_of i)));
        let src, _ =
          Fabric.add_nf fab ~name:(Printf.sprintf "src%d" i) ~impl:(Dummy.impl d1)
            ~costs:Costs.dummy
        in
        let dst, _ =
          Fabric.add_nf fab ~name:(Printf.sprintf "dst%d" i) ~impl:(Dummy.impl d2)
            ~costs:Costs.dummy
        in
        { src; dst; d1; d2 })
      |> fun ps ->
    Proc.spawn fab.engine (fun () ->
        List.iteri
          (fun i p -> Controller.set_route fab.ctrl (two_sided (subnet_of i)) p.src)
          ps);
    ps
  in
  (fab, pairs)

let spec_for ~filter p =
  Move.spec ~src:p.src ~dst:p.dst ~filter ~guarantee:Move.Loss_free
    ~parallel:true ()

(* Run [moves] through the scheduler at t=0.1; returns results in
   submission order plus the virtual makespan. *)
let run_scheduled fab specs =
  let results = ref [] in
  let finished = ref 0.0 in
  Engine.schedule_at fab.Fabric.engine 0.1 (fun () ->
      Proc.spawn fab.Fabric.engine (fun () ->
          let ivars = List.map (Move.submit fab.Fabric.sched) specs in
          results := List.map Proc.Ivar.read ivars;
          finished := Engine.now fab.Fabric.engine));
  Fabric.run fab;
  (!results, !finished -. 0.1)

(* --- concurrency of disjoint moves -------------------------------------- *)

let test_disjoint_moves_concurrent () =
  let n = 4 and flows = 12 in
  let fab, pairs = dummy_bed ~n ~flows ~subnet_of:(fun i -> i) () in
  let specs = List.mapi (fun i p -> spec_for ~filter:(two_sided i) p) pairs in
  let results, makespan = run_scheduled fab specs in
  let reports = List.map Op_error.ok_exn results in
  List.iter
    (fun r -> Alcotest.(check int) "all flows moved" flows r.Move.per_chunks)
    reports;
  List.iter
    (fun p ->
      Alcotest.(check int) "src drained" 0 (Dummy.flow_count p.d1);
      Alcotest.(check int) "dst imported all" flows (Dummy.imported_count p.d2))
    pairs;
  let stats = Sched.stats fab.Fabric.sched in
  Alcotest.(check int) "all admitted at once" n stats.Sched.peak_active;
  Alcotest.(check int) "all completed" n stats.Sched.completed;
  (* Overlap in virtual time: the makespan must undercut the sum of the
     individual durations (true concurrency, not interleaved waiting). *)
  let total = List.fold_left (fun acc r -> acc +. Move.duration r) 0.0 reports in
  Alcotest.(check bool)
    (Printf.sprintf "sublinear makespan (%.4f < %.4f)" makespan total)
    true
    (makespan < total)

let test_overlapping_moves_serialize () =
  (* Chain A->B then B->A over the same filter: the second conflicts
     (shared instances, overlapping flows) and must observe the first's
     final state — every flow returns home, nothing lost or duplicated. *)
  let flows = 10 in
  let fab, pairs = dummy_bed ~n:1 ~flows ~subnet_of:(fun _ -> 0) () in
  let p = List.hd pairs in
  let there = spec_for ~filter:(two_sided 0) p in
  let back =
    Move.spec ~src:p.dst ~dst:p.src ~filter:(two_sided 0)
      ~guarantee:Move.Loss_free ~parallel:true ()
  in
  let results, _ = run_scheduled fab [ there; back ] in
  let reports = List.map Op_error.ok_exn results in
  List.iter
    (fun r ->
      Alcotest.(check int) "each leg carries every flow" flows r.Move.per_chunks)
    reports;
  Alcotest.(check int) "flows back at the source" flows (Dummy.flow_count p.d1);
  Alcotest.(check int) "destination drained" 0 (Dummy.flow_count p.d2);
  let stats = Sched.stats fab.Fabric.sched in
  Alcotest.(check int) "never ran together" 1 stats.Sched.peak_active;
  Alcotest.(check int) "second waited" 1 stats.Sched.peak_waiting

let test_cap_one_serializes_everything () =
  let n = 3 and flows = 6 in
  let fab, pairs = dummy_bed ~max_concurrent_ops:1 ~n ~flows ~subnet_of:(fun i -> i) () in
  let specs = List.mapi (fun i p -> spec_for ~filter:(two_sided i) p) pairs in
  let results, _ = run_scheduled fab specs in
  List.iter (fun r -> ignore (Op_error.ok_exn r)) results;
  let stats = Sched.stats fab.Fabric.sched in
  Alcotest.(check int) "cap respected" 1 stats.Sched.peak_active;
  Alcotest.(check int) "all completed" n stats.Sched.completed

let test_bad_cap_rejected () =
  let fab = Fabric.create () in
  Alcotest.check_raises "zero cap"
    (Invalid_argument "Sched.create: max_concurrent must be at least 1")
    (fun () -> ignore (Sched.create ~max_concurrent:0 fab.Fabric.ctrl))

(* --- share holds block conflicting moves --------------------------------- *)

let test_share_hold_blocks_move () =
  let flows = 6 in
  let fab, pairs = dummy_bed ~n:1 ~flows ~subnet_of:(fun _ -> 0) () in
  let p = List.hd pairs in
  let sched = fab.Fabric.sched in
  let move_done = ref None in
  Engine.schedule_at fab.Fabric.engine 0.1 (fun () ->
      Proc.spawn fab.Fabric.engine (fun () ->
          let share =
            Share.start_exn fab.Fabric.ctrl ~sched
              ~instances:[ p.src; p.dst ] ~filter:(two_sided 0)
              ~consistency:Share.Strong ()
          in
          let ivar = Move.submit sched (spec_for ~filter:(two_sided 0) p) in
          (* The move conflicts with the live share; give it time to run
             if the scheduler (wrongly) admitted it. *)
          Proc.sleep 0.5;
          Alcotest.(check int) "move queued behind the share" 1
            (Sched.waiting_count sched);
          Alcotest.(check bool) "move not finished under the hold" true
            (Proc.Ivar.peek ivar = None);
          Share.stop share;
          move_done := Some (Proc.Ivar.read ivar)));
  Fabric.run fab;
  match !move_done with
  | Some (Ok r) ->
    Alcotest.(check int) "move ran after release" flows r.Move.per_chunks
  | Some (Error e) -> Alcotest.fail ("move failed: " ^ Op_error.to_string e)
  | None -> Alcotest.fail "move never completed"

(* --- crash containment under concurrency -------------------------------- *)

let resilience =
  {
    Controller.call_timeout = 0.05;
    max_retries = 2;
    backoff = 0.01;
    liveness_misses = 3;
    probe_period = 0.1;
  }

let test_crash_under_concurrency () =
  (* Two concurrent disjoint moves; the first's source dies mid-transfer
     (via the on_phase hook, as in test_faults). The crashed move fails
     typed, the other completes untouched, and the scheduler retires
     both. *)
  let flows = 8 in
  let fab, pairs = dummy_bed ~resilience ~n:2 ~flows ~subnet_of:(fun i -> i) () in
  let p0 = List.nth pairs 0 and p1 = List.nth pairs 1 in
  let s0 =
    Move.spec ~src:p0.src ~dst:p0.dst ~filter:(two_sided 0)
      ~guarantee:Move.Loss_free ~parallel:true
      ~on_phase:(fun ph ->
        if ph = Move.Transfer_started then
          Faults.crash_now fab.Fabric.faults ~node:"src0")
      ()
  in
  let s1 = spec_for ~filter:(two_sided 1) p1 in
  let results, _ = run_scheduled fab [ s0; s1 ] in
  (match results with
  | [ crashed; survived ] ->
    (match crashed with
    | Error (Op_error.Nf_crashed { nf = "src0" }) -> ()
    | Ok _ -> Alcotest.fail "move across a crash must not succeed"
    | Error e -> Alcotest.fail ("unexpected error: " ^ Op_error.to_string e));
    let r = Op_error.ok_exn survived in
    Alcotest.(check int) "unrelated move unaffected" flows r.Move.per_chunks;
    Alcotest.(check int) "its flows all arrived" flows (Dummy.imported_count p1.d2)
  | _ -> Alcotest.fail "expected two results");
  let stats = Sched.stats fab.Fabric.sched in
  Alcotest.(check int) "scheduler retired both" 2 stats.Sched.completed

(* --- southbound batching ------------------------------------------------ *)

let run_batched ~batch =
  let flows = 40 in
  let config = { Controller.default_config with sb_batch_bytes = batch } in
  let fab, pairs = dummy_bed ~config ~n:1 ~flows ~subnet_of:(fun _ -> 0) () in
  let p = List.hd pairs in
  let results, _ = run_scheduled fab [ spec_for ~filter:(two_sided 0) p ] in
  let r = Op_error.ok_exn (List.hd results) in
  (r, Controller.messages_handled fab.Fabric.ctrl, Dummy.imported_count p.d2)

let test_batching_reduces_messages () =
  let r_plain, msgs_plain, imported_plain = run_batched ~batch:None in
  let r_batch, msgs_batch, imported_batch = run_batched ~batch:(Some 2048) in
  Alcotest.(check int) "same chunks either way" r_plain.Move.per_chunks
    r_batch.Move.per_chunks;
  Alcotest.(check int) "same bytes either way" r_plain.Move.state_bytes
    r_batch.Move.state_bytes;
  Alcotest.(check int) "same final state" imported_plain imported_batch;
  Alcotest.(check bool)
    (Printf.sprintf "fewer controller messages (%d < %d)" msgs_batch msgs_plain)
    true
    (msgs_batch < msgs_plain)

(* --- Op_engine accounting ----------------------------------------------- *)

let test_tally_account () =
  let t = Op_engine.tally () in
  let chunk key bytes =
    (Filter.of_key key, Opennf_state.Chunk.v ~kind:"t" (String.make bytes 'x'))
  in
  let sized =
    [ chunk (key_in_subnet 0 1) 100; chunk (key_in_subnet 0 2) 50 ]
  in
  Op_engine.account t sized;
  Op_engine.account t [ chunk (key_in_subnet 0 3) 25 ];
  Alcotest.(check int) "chunks counted" 3 t.Op_engine.chunks;
  Alcotest.(check int) "bytes folded"
    (List.fold_left
       (fun acc (_, c) -> acc + Opennf_state.Chunk.size c)
       (Opennf_state.Chunk.size (snd (chunk (key_in_subnet 0 3) 25)))
       sized)
    t.Op_engine.bytes

(* --- properties --------------------------------------------------------- *)

(* Scheduled-concurrent vs strictly-sequential execution of the same
   disjoint workload: the semantic report fields (chunks, bytes,
   endpoints) and final NF states must agree exactly; only timings may
   differ (concurrency shares the controller CPU). *)
let prop_disjoint_equals_sequential =
  QCheck.Test.make ~name:"disjoint concurrent moves == sequential (random)"
    ~count:12
    QCheck.(
      triple (int_range 2 5) (int_range 1 20) (int_range 1 1000))
    (fun (n, flows, seed) ->
      let outcome cap =
        let fab, pairs =
          dummy_bed ~seed ~max_concurrent_ops:cap ~n ~flows ~subnet_of:(fun i -> i)
            ()
        in
        let specs = List.mapi (fun i p -> spec_for ~filter:(two_sided i) p) pairs in
        let results, _ = run_scheduled fab specs in
        List.map2
          (fun r p ->
            let r = Op_error.ok_exn r in
            ( r.Move.rp_src, r.Move.rp_dst, r.Move.per_chunks,
              r.Move.multi_chunks, r.Move.state_bytes,
              Dummy.flow_count p.d1, Dummy.imported_count p.d2 ))
          results pairs
      in
      outcome n = outcome 1)

(* Overlapping moves hop the same state through a chain of instances;
   serialization must conserve it: every hop carries all [flows] chunks
   and only the last instance holds state afterwards. *)
let prop_overlap_conserves_chunks =
  QCheck.Test.make ~name:"overlapping moves conserve chunks (random)" ~count:12
    QCheck.(pair (int_range 2 4) (int_range 1 15))
    (fun (hops, flows) ->
      let fab, pairs = dummy_bed ~n:1 ~flows ~subnet_of:(fun _ -> 0) () in
      let p = List.hd pairs in
      let extra =
        List.init (hops - 1) (fun i ->
            let d = Dummy.create () in
            let nf, _ =
              Fabric.add_nf fab ~name:(Printf.sprintf "hop%d" i)
                ~impl:(Dummy.impl d) ~costs:Costs.dummy
            in
            (nf, d))
      in
      let stations = (p.src, p.d1) :: (p.dst, p.d2) :: extra in
      let specs =
        List.map2
          (fun (src, _) (dst, _) ->
            Move.spec ~src ~dst ~filter:(two_sided 0) ~guarantee:Move.Loss_free
              ~parallel:true ())
          (List.filteri (fun i _ -> i < List.length stations - 1) stations)
          (List.tl stations)
      in
      let results, _ = run_scheduled fab specs in
      let reports = List.map Op_error.ok_exn results in
      List.for_all (fun r -> r.Move.per_chunks = flows) reports
      && (let counts = List.map (fun (_, d) -> Dummy.flow_count d) stations in
          let last = List.length counts - 1 in
          List.for_all2
            (fun i c -> if i = last then c = flows else c = 0)
            (List.init (List.length counts) Fun.id)
            counts)
      && (Sched.stats fab.Fabric.sched).Sched.peak_active = 1)

let suite =
  [
    Alcotest.test_case "Filter.overlaps" `Quick test_filter_overlaps;
    Alcotest.test_case "footprint conflicts" `Quick test_footprint_conflicts;
    Alcotest.test_case "disjoint moves run concurrently" `Quick
      test_disjoint_moves_concurrent;
    Alcotest.test_case "overlapping moves serialize" `Quick
      test_overlapping_moves_serialize;
    Alcotest.test_case "cap=1 serializes everything" `Quick
      test_cap_one_serializes_everything;
    Alcotest.test_case "invalid cap rejected" `Quick test_bad_cap_rejected;
    Alcotest.test_case "share hold blocks conflicting move" `Quick
      test_share_hold_blocks_move;
    Alcotest.test_case "crash contained under concurrency" `Quick
      test_crash_under_concurrency;
    Alcotest.test_case "piece batching reduces controller messages" `Quick
      test_batching_reduces_messages;
    Alcotest.test_case "Op_engine.tally accounting" `Quick test_tally_account;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_disjoint_equals_sequential; prop_overlap_conserves_chunks ]
