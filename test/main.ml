let () =
  Alcotest.run "opennf"
    [
      ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("net", Test_net.suite);
      ("index-equiv", Test_index_equiv.suite);
      ("ordered", Test_ordered.suite);
      ("arena", Test_arena.suite);
      ("state", Test_state.suite);
      ("sb", Test_sb.suite);
      ("nfs", Test_nfs.suite);
      ("move", Test_move.suite);
      ("move-edge", Test_move_edge.suite);
      ("audit", Test_audit.suite);
      ("re-move", Test_re_move.suite);
      ("nat-move", Test_nat_move.suite);
      ("ids-move", Test_ids_move.suite);
      ("ops", Test_ops.suite);
      ("baseline", Test_baseline.suite);
      ("apps", Test_apps.suite);
      ("trace", Test_trace.suite);
      ("properties", Test_props.suite);
      ("sched", Test_sched.suite);
      ("shard", Test_shard.suite);
      ("par", Test_par.suite);
      ("faults", Test_faults.suite);
      ("backend", Test_backend.suite);
      ("obs", Test_obs.suite);
      ("monitor", Test_monitor.suite);
    ]
