(* Integration tests for the northbound move operation (§5.1): the three
   guarantee levels and the two optimizations, checked against the audit
   ledger's loss-freedom and order-preservation definitions. *)

module Proc = Opennf_sim.Proc
open Opennf_net
open Opennf
module H = Helpers

let move_all tb ~guarantee ~parallel ~early_release =
  let report = ref None in
  H.run_with tb ~at:1.0 (fun () ->
      let spec =
        Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any ~guarantee
          ~parallel ~early_release ()
      in
      report := Some (Move.run_exn tb.H.fab.ctrl spec));
  Option.get !report

let test_no_guarantee_drops () =
  let tb = H.prads_pair () in
  let report =
    move_all tb ~guarantee:Move.No_guarantee ~parallel:false
      ~early_release:false
  in
  Alcotest.(check bool)
    "state was transferred" true
    (report.Move.per_chunks > 0);
  (* Packets arriving at the source mid-move are dropped. *)
  Alcotest.(check bool)
    "some packets were dropped" true
    (Opennf_sb.Runtime.tombstone_dropped tb.H.rt1 > 0);
  (* And the flows continue at the destination afterwards. *)
  Alcotest.(check bool)
    "destination processed traffic" true
    (Opennf_sb.Runtime.processed_count tb.H.rt2 > 0)

let test_loss_free () =
  let tb = H.prads_pair () in
  let report =
    move_all tb ~guarantee:Move.Loss_free ~parallel:false ~early_release:false
  in
  Alcotest.(check bool) "chunks moved" true (report.Move.per_chunks > 0);
  Alcotest.(check bool) "packets were relayed" true (report.Move.relayed > 0);
  H.assert_loss_free tb;
  (* All 5-tuple state ends up at the destination. *)
  Alcotest.(check int) "src kept no connections" 0
    (Opennf_nfs.Prads.connection_count tb.H.prads1);
  Alcotest.(check int) "dst holds all connections"
    (List.length tb.H.keys)
    (Opennf_nfs.Prads.connection_count tb.H.prads2)

let test_loss_free_parallel () =
  let tb = H.prads_pair () in
  let report =
    move_all tb ~guarantee:Move.Loss_free ~parallel:true ~early_release:false
  in
  Alcotest.(check bool) "chunks moved" true (report.Move.per_chunks > 0);
  H.assert_loss_free tb

let test_loss_free_early_release () =
  let tb = H.prads_pair () in
  let _report =
    move_all tb ~guarantee:Move.Loss_free ~parallel:true ~early_release:true
  in
  H.assert_loss_free tb

let test_order_preserving () =
  let tb = H.prads_pair () in
  let _report =
    move_all tb ~guarantee:Move.Order_preserving ~parallel:false
      ~early_release:false
  in
  H.assert_loss_free tb;
  H.assert_order_preserved tb

let test_order_preserving_optimized () =
  let tb = H.prads_pair () in
  let _report =
    move_all tb ~guarantee:Move.Order_preserving ~parallel:true
      ~early_release:true
  in
  H.assert_loss_free tb;
  (* With early release, ordering is guaranteed per flow (§5.1.3). *)
  H.assert_order_preserved_per_flow tb

let test_loss_free_not_order_preserving_is_possible () =
  (* A loss-free move may reorder (that is why order-preserving exists);
     with a slow packet-out path the race of Figure 5 shows up. *)
  let tb = H.prads_pair ~rate:4000.0 ~packet_out_rate:500.0 () in
  let _report =
    move_all tb ~guarantee:Move.Loss_free ~parallel:true ~early_release:false
  in
  H.assert_loss_free tb;
  let violations = Audit.order_violations tb.H.fab.audit in
  Alcotest.(check bool)
    "loss-free alone reordered some packets" true
    (List.length violations > 0)

let test_faster_without_guarantees () =
  let tb1 = H.prads_pair () in
  let ng =
    move_all tb1 ~guarantee:Move.No_guarantee ~parallel:true
      ~early_release:false
  in
  let tb2 = H.prads_pair () in
  let op =
    move_all tb2 ~guarantee:Move.Order_preserving ~parallel:true
      ~early_release:true
  in
  Alcotest.(check bool)
    "order-preserving move takes longer than no-guarantees" true
    (Move.duration op > Move.duration ng)

let test_multiflow_scope () =
  let tb = H.prads_pair () in
  H.run_with tb ~at:1.0 (fun () ->
      let spec =
        Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
          ~scope:[ Opennf_state.Scope.Per; Opennf_state.Scope.Multi ]
          ~guarantee:Move.Loss_free ()
      in
      ignore (Move.run_exn tb.H.fab.ctrl spec));
  Alcotest.(check int) "assets moved away from src" 0
    (Opennf_nfs.Prads.asset_count tb.H.prads1);
  Alcotest.(check bool)
    "assets present at dst" true
    (Opennf_nfs.Prads.asset_count tb.H.prads2 > 0);
  H.assert_loss_free tb

let test_filtered_move_leaves_other_flows () =
  let tb = H.prads_pair ~flows:20 () in
  (* Move only the first flow. *)
  let the_flow = List.hd tb.H.keys in
  H.run_with tb ~at:1.0 (fun () ->
      let spec =
        Move.spec ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:(Filter.of_key the_flow)
          ~guarantee:Move.Loss_free ()
      in
      let report = Move.run_exn tb.H.fab.ctrl spec in
      Alcotest.(check int) "exactly one chunk" 1 report.Move.per_chunks);
  Alcotest.(check int) "src keeps the rest" 19
    (Opennf_nfs.Prads.connection_count tb.H.prads1);
  Alcotest.(check int) "dst holds the moved flow" 1
    (Opennf_nfs.Prads.connection_count tb.H.prads2);
  H.assert_loss_free tb

let suite =
  [
    Alcotest.test_case "no-guarantee move drops packets" `Quick
      test_no_guarantee_drops;
    Alcotest.test_case "loss-free move loses nothing" `Quick test_loss_free;
    Alcotest.test_case "loss-free move (parallel)" `Quick
      test_loss_free_parallel;
    Alcotest.test_case "loss-free move (early release)" `Quick
      test_loss_free_early_release;
    Alcotest.test_case "order-preserving move" `Quick test_order_preserving;
    Alcotest.test_case "order-preserving move (PL+ER)" `Quick
      test_order_preserving_optimized;
    Alcotest.test_case "loss-free alone can reorder" `Quick
      test_loss_free_not_order_preserving_is_possible;
    Alcotest.test_case "guarantees cost time" `Quick
      test_faster_without_guarantees;
    Alcotest.test_case "multi-flow scope moves assets" `Quick
      test_multiflow_scope;
    Alcotest.test_case "single-flow filter is respected" `Quick
      test_filtered_move_leaves_other_flows;
  ]
