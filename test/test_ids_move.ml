(* The §2.1 "always up-to-date NFs" scenario end to end: an IDS is
   upgraded mid-HTTP-download by moving active flows to the new
   instance. The guarantee level decides whether the IDS stays accurate:

   - a move without guarantees drops mid-move packets, corrupting the
     reply digest — the malware goes undetected;
   - a loss-free move relays every packet — the malware is caught;
   - reordered relays (loss-free without order preservation, slow
     packet-out path) provoke the false "SYN_inside_connection" weird
     alert on flows whose SYN is still in flight; an order-preserving
     move stays silent. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf

let ip = Ipaddr.v

let ids_bed ?packet_out_rate ~malware () =
  let fab = Fabric.create ~seed:47 ?packet_out_rate () in
  let ids1 = Opennf_nfs.Ids.create ~malware () in
  let ids2 = Opennf_nfs.Ids.create ~malware () in
  let nf1, _ =
    Fabric.add_nf fab ~name:"bro1" ~impl:(Opennf_nfs.Ids.impl ids1) ~costs:Costs.bro
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"bro2" ~impl:(Opennf_nfs.Ids.impl ids2) ~costs:Costs.bro
  in
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  (fab, ids1, ids2, nf1, nf2)

let malware_alerts ids =
  List.filter
    (function Opennf_nfs.Ids.Malware _ -> true | _ -> false)
    (Opennf_nfs.Ids.alert_log ids)

let weird_alerts ids =
  List.filter
    (function Opennf_nfs.Ids.Weird _ -> true | _ -> false)
    (Opennf_nfs.Ids.alert_log ids)

(* A slow malware download that straddles the move at t=0.5. *)
let inject_download fab gen body =
  List.iter (fun (at, p) -> Fabric.inject_at fab at p)
    (Opennf_trace.Gen.http_session gen ~client:(ip 10 0 0 7)
       ~server:(ip 203 0 113 80) ~sport:34000 ~start:0.2 ~url:"/payload"
       ~body ~gap:0.01 ())

let upgrade fab nf1 nf2 ~guarantee =
  Helpers.run_at fab ~at:0.5 (fun () ->
      ignore
        (Move.run_exn fab.Fabric.ctrl
           (Move.spec ~src:nf1 ~dst:nf2 ~filter:Filter.any ~guarantee
              ~parallel:true ())))

let test_upgrade_without_guarantees_misses_malware () =
  let body, digest = Opennf_trace.Gen.malware_body 60_000 in
  let fab, ids1, ids2, nf1, nf2 = ids_bed ~malware:[ digest ] () in
  let gen = Opennf_trace.Gen.create ~seed:2 () in
  inject_download fab gen body;
  upgrade fab nf1 nf2 ~guarantee:Move.No_guarantee;
  Alcotest.(check int) "malware missed everywhere" 0
    (List.length (malware_alerts ids1) + List.length (malware_alerts ids2))

let test_upgrade_loss_free_catches_malware () =
  let body, digest = Opennf_trace.Gen.malware_body 60_000 in
  let fab, _ids1, ids2, nf1, nf2 = ids_bed ~malware:[ digest ] () in
  let gen = Opennf_trace.Gen.create ~seed:2 () in
  inject_download fab gen body;
  upgrade fab nf1 nf2 ~guarantee:Move.Loss_free;
  Alcotest.(check bool) "malware caught at the upgraded instance" true
    (malware_alerts ids2 <> [])

(* Many flows whose SYNs are in flight when a loss-free move reorders
   relays behind direct packets: data processed before SYN ⇒ false weird
   alerts. The same setup under order preservation raises none. *)
let syn_storm fab gen =
  (* Each flow: SYN at t, first data 2 ms later — the move window at
     t=0.5 catches many pairs. *)
  List.iteri
    (fun i start0 ->
      let key =
        Flow.make ~src:(ip 10 0 1 (1 + i)) ~dst:(ip 203 0 113 80)
          ~sport:(30000 + i) ~dport:80 ()
      in
      let start = 0.40 +. start0 in
      List.iter (fun (at, p) -> Fabric.inject_at fab at p)
        [ Opennf_trace.Gen.packet gen ~at:start ~key ~flags:[ Syn ] ();
          Opennf_trace.Gen.packet gen ~at:(start +. 0.002) ~key ~seq:1
            ~payload:"x" () ])
    (List.init 60 (fun i -> 0.004 *. float_of_int i))

let run_syn_storm ~guarantee =
  let fab, ids1, ids2, nf1, nf2 =
    ids_bed ~packet_out_rate:400.0 ~malware:[] ()
  in
  let gen = Opennf_trace.Gen.create ~seed:3 () in
  syn_storm fab gen;
  upgrade fab nf1 nf2 ~guarantee;
  List.length (weird_alerts ids1) + List.length (weird_alerts ids2)

let test_loss_free_reordering_causes_false_alerts () =
  Alcotest.(check bool) "false SYN_inside_connection alerts" true
    (run_syn_storm ~guarantee:Move.Loss_free > 0)

let test_order_preserving_upgrade_stays_silent () =
  Alcotest.(check int) "no false alerts" 0
    (run_syn_storm ~guarantee:Move.Order_preserving)

let suite =
  [
    Alcotest.test_case "NG upgrade misses malware" `Quick
      test_upgrade_without_guarantees_misses_malware;
    Alcotest.test_case "LF upgrade catches malware" `Quick
      test_upgrade_loss_free_catches_malware;
    Alcotest.test_case "LF reordering raises false weird alerts" `Quick
      test_loss_free_reordering_causes_false_alerts;
    Alcotest.test_case "OP upgrade raises none" `Quick
      test_order_preserving_upgrade_stays_silent;
  ]
