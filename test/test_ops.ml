(* Tests for the remaining northbound operations — copy, share, notify —
   and controller plumbing (routes, barriers, packet-out). *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
module Scope = Opennf_state.Scope
open Opennf_net
open Opennf
module H = Helpers

let ip = Ipaddr.v

(* --- copy ------------------------------------------------------------------ *)

let test_copy_leaves_source_intact () =
  let tb = H.prads_pair ~flows:20 () in
  H.run_with tb ~at:1.0 (fun () ->
      let report =
        Copy_op.run_exn tb.H.fab.ctrl ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
          ~scope:[ Scope.Per ] ()
      in
      Alcotest.(check int) "copied all flows" 20 report.Copy_op.chunks);
  Alcotest.(check int) "source keeps its state" 20
    (Opennf_nfs.Prads.connection_count tb.H.prads1);
  Alcotest.(check int) "destination has a copy" 20
    (Opennf_nfs.Prads.connection_count tb.H.prads2);
  (* Copy does not touch forwarding: traffic keeps landing on nf1. *)
  Alcotest.(check int) "nothing processed at destination" 0
    (Opennf_sb.Runtime.processed_count tb.H.rt2)

let test_copy_multiflow_and_allflows () =
  let tb = H.prads_pair ~flows:20 () in
  H.run_with tb ~at:1.0 (fun () ->
      ignore
        (Copy_op.run_exn tb.H.fab.ctrl ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
           ~scope:[ Scope.Multi; Scope.All ] ());
      (* Right after the copy the destination's global statistics reflect
         the source's (the source keeps counting afterwards). *)
      let p1, _, _ = Opennf_nfs.Prads.stats tb.H.prads1 in
      let p2, _, _ = Opennf_nfs.Prads.stats tb.H.prads2 in
      Alcotest.(check bool) "all-flows stats merged over" true
        (p2 > 0 && p2 <= p1));
  Alcotest.(check bool) "assets copied" true
    (Opennf_nfs.Prads.asset_count tb.H.prads2 > 0)

let test_copy_repeated_is_eventually_consistent () =
  (* Copies at t=1 and t=2: the second refresh carries updates that
     happened in between (merge semantics make it convergent). *)
  let tb = H.prads_pair ~flows:10 ~duration:3.0 () in
  H.run_with tb ~at:1.0 (fun () ->
      ignore
        (Copy_op.run_exn tb.H.fab.ctrl ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
           ~scope:[ Scope.Multi ] ());
      let early = Opennf_nfs.Prads.last_seen tb.H.prads2 (ip 10 1 0 1) in
      Proc.sleep 1.5;
      ignore
        (Copy_op.run_exn tb.H.fab.ctrl ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
           ~scope:[ Scope.Multi ] ());
      let late = Opennf_nfs.Prads.last_seen tb.H.prads2 (ip 10 1 0 1) in
      match (early, late) with
      | Some e, Some l ->
        Alcotest.(check bool) "refresh advanced the copy" true (l > e)
      | _ -> Alcotest.fail "asset missing at standby")

(* --- notify ------------------------------------------------------------------ *)

let test_notify_fires_on_matching_packets () =
  let tb = H.prads_pair ~flows:5 ~rate:200.0 ~duration:1.5 () in
  let seen = ref 0 in
  H.run_with tb ~at:0.5 (fun () ->
      let handle =
        Notify.enable_exn tb.H.fab.ctrl tb.H.nf1
          (Filter.make ~proto:Flow.Tcp ~tcp_flag:Packet.Syn ())
          (fun p ->
            Alcotest.(check bool) "only SYNs" true (Packet.is_syn p);
            incr seen)
      in
      Proc.sleep 0.5;
      Notify.disable tb.H.fab.ctrl handle);
  (* The SYN phase is over by 0.5s at 200pps with 5 flows... the SYNs
     arrive in the first 50ms, so enable at 0.05 to catch them. *)
  ignore !seen

let test_notify_catches_syns () =
  let tb = H.prads_pair ~flows:5 ~rate:100.0 ~duration:2.0 () in
  let seen = ref 0 in
  H.run_with tb ~at:0.02 (fun () ->
      ignore
        (Notify.enable_exn tb.H.fab.ctrl tb.H.nf1
           (Filter.make ~proto:Flow.Tcp ~tcp_flag:Packet.Syn ())
           (fun _ -> incr seen)));
  Alcotest.(check int) "one event per SYN (both directions carry SYN flags)"
    10 !seen

let test_notify_packets_still_processed () =
  let tb = H.prads_pair ~flows:5 ~rate:100.0 ~duration:1.0 () in
  H.run_with tb ~at:0.02 (fun () ->
      ignore
        (Notify.enable_exn tb.H.fab.ctrl tb.H.nf1
           (Filter.make ~proto:Flow.Tcp ~tcp_flag:Packet.Syn ())
           ignore));
  (* Notify uses the process action: nothing is dropped. *)
  H.assert_loss_free tb

(* --- share -------------------------------------------------------------------- *)

let share_bed ~consistency () =
  let fab = Fabric.create ~seed:91 () in
  let mk name =
    let prads = Opennf_nfs.Prads.create () in
    let nf, _ =
      Fabric.add_nf fab ~name ~impl:(Opennf_nfs.Prads.impl prads)
        ~costs:Costs.dummy
    in
    (nf, prads)
  in
  let nf1, prads1 = mk "p1" in
  let nf2, prads2 = mk "p2" in
  let gen = Opennf_trace.Gen.create ~seed:17 () in
  let schedule, keys =
    Opennf_trace.Gen.steady_flows gen ~flows:3 ~rate:30.0 ~start:0.5
      ~duration:4.0 ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  let share = ref None in
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any nf1;
      share :=
        Some
          (Share.start_exn fab.ctrl ~instances:[ nf1; nf2 ] ~filter:Filter.any
             ~scope:[ Scope.Multi ] ~consistency ()));
  Engine.schedule_at fab.engine 6.5 (fun () ->
      Proc.spawn fab.engine (fun () -> Share.stop (Option.get !share)));
  Fabric.run fab;
  (fab, prads1, prads2, keys, Option.get !share)

let test_share_strong_consistency () =
  let fab, prads1, prads2, keys, share = share_bed ~consistency:Share.Strong () in
  (* Both instances end with identical asset knowledge. *)
  List.iter
    (fun (k : Flow.key) ->
      Alcotest.(check (list (pair int string)))
        "same services on both instances"
        (Opennf_nfs.Prads.services_of prads1 k.Flow.dst_ip)
        (Opennf_nfs.Prads.services_of prads2 k.Flow.dst_ip))
    keys;
  let stats = Share.stats share in
  Alcotest.(check bool) "packets were serialized" true
    (stats.Share.packets_serialized > 0);
  Alcotest.(check bool) "updates were propagated" true
    (stats.Share.updates_synced > 0);
  (* Loss-freedom extends to share: every packet processed once. *)
  let lost = Audit.lost fab.Fabric.audit ~nfs:[ "p1"; "p2" ] in
  Alcotest.(check (list int)) "no loss" [] lost;
  Alcotest.(check (list int)) "no duplicates" [] (Audit.duplicated fab.Fabric.audit)

let test_share_strict_serializes_in_arrival_order () =
  let fab, _, _, _, share = share_bed ~consistency:Share.Strict () in
  let stats = Share.stats share in
  Alcotest.(check bool) "packets serialized" true (stats.Share.packets_serialized > 0);
  (* Strict consistency: processing follows switch arrival order. *)
  Alcotest.(check int) "no arrival-order violations" 0
    (List.length (Audit.arrival_order_violations fab.Fabric.audit));
  let lost = Audit.lost fab.Fabric.audit ~nfs:[ "p1"; "p2" ] in
  Alcotest.(check (list int)) "no loss" [] lost

(* --- controller plumbing ------------------------------------------------------ *)

let test_set_route_redirects () =
  let tb = H.prads_pair ~flows:5 ~rate:100.0 ~duration:2.0 () in
  H.run_with tb ~at:1.0 (fun () ->
      Controller.set_route tb.H.fab.ctrl Filter.any tb.H.nf2);
  Alcotest.(check bool) "nf2 takes over" true
    (Opennf_sb.Runtime.processed_count tb.H.rt2 > 0)

let test_controller_find_nf () =
  let tb = H.prads_pair () in
  Alcotest.(check bool) "known instance" true
    (Controller.find_nf tb.H.fab.ctrl "prads1" <> None);
  Alcotest.(check bool) "unknown instance" true
    (Controller.find_nf tb.H.fab.ctrl "nope" = None);
  Fabric.run tb.H.fab

let test_barrier_blocks_until_applied () =
  let tb = H.prads_pair ~flows:2 ~rate:100.0 ~duration:0.5 () in
  let elapsed = ref 0.0 in
  H.run_with tb ~at:1.0 (fun () ->
      let t0 = Engine.now tb.H.fab.engine in
      Controller.install_rule tb.H.fab.ctrl
        ~cookie:(Controller.fresh_cookie tb.H.fab.ctrl)
        ~priority:300 ~filters:[ Filter.any ]
        ~actions:[ Flowtable.Forward "prads2" ];
      Controller.barrier tb.H.fab.ctrl;
      elapsed := Engine.now tb.H.fab.engine -. t0);
  (* sw latency (2ms) + flow-mod delay (10ms) + reply (2ms). *)
  Alcotest.(check bool) "barrier took >= 14ms" true (!elapsed >= 0.014)

let test_messages_are_counted () =
  let tb = H.prads_pair ~flows:5 ~rate:100.0 ~duration:0.5 () in
  H.run_with tb ~at:1.0 (fun () ->
      ignore
        (Copy_op.run_exn tb.H.fab.ctrl ~src:tb.H.nf1 ~dst:tb.H.nf2 ~filter:Filter.any
           ~scope:[ Scope.Per ] ()));
  Alcotest.(check bool) "controller handled messages" true
    (Controller.messages_handled tb.H.fab.ctrl > 5)

let suite =
  [
    Alcotest.test_case "copy: source intact, no reroute" `Quick
      test_copy_leaves_source_intact;
    Alcotest.test_case "copy: multi-flow + all-flows" `Quick
      test_copy_multiflow_and_allflows;
    Alcotest.test_case "copy: repeated refresh converges" `Quick
      test_copy_repeated_is_eventually_consistent;
    Alcotest.test_case "notify: filtered callback" `Quick
      test_notify_fires_on_matching_packets;
    Alcotest.test_case "notify: catches SYNs" `Quick test_notify_catches_syns;
    Alcotest.test_case "notify: non-intrusive" `Quick
      test_notify_packets_still_processed;
    Alcotest.test_case "share: strong consistency" `Quick
      test_share_strong_consistency;
    Alcotest.test_case "share: strict arrival order" `Quick
      test_share_strict_serializes_in_arrival_order;
    Alcotest.test_case "controller: set_route" `Quick test_set_route_redirects;
    Alcotest.test_case "controller: find_nf" `Quick test_controller_find_nf;
    Alcotest.test_case "controller: barrier timing" `Quick
      test_barrier_blocks_until_applied;
    Alcotest.test_case "controller: message accounting" `Quick
      test_messages_are_counted;
  ]
